"""Corpus management: remembering which cases already came up clean.

A long-running farm (the nightly job caches its corpus directory
across runs) should spend its budget on *new* behavior, not on
re-checking cases it has already proven clean. The corpus is an
ordinary :class:`~repro.farm.ArtifactStore`; each clean case is
recorded under its **corpus key** — the SHA-256 of the canonical JSON
of the farm fingerprints of every run the oracle would execute for the
case. Because each farm fingerprint already covers the model's
canonical serialization, the full spec, and the engine version
(:func:`repro.farm.fingerprint`), two differently-generated cases that
would run the same checks dedupe to one entry, and *every* entry
silently invalidates when the engine version bumps — a new engine
re-earns its whole corpus.

Only clean outcomes are recorded. A failing case must keep failing in
every future round until the bug is fixed (at which point its verdicts,
and nothing else, need re-proving), so failures are never deduped
away. Unencodable cases are recorded too — re-checking explicit-only
coverage is cheap but not free.
"""

from __future__ import annotations

import hashlib

from repro.fuzz.generators import FuzzCase
from repro.fuzz.oracle import ORACLE_CONFIGS
from repro.fuzz.rng import GENERATION

#: schema marker of corpus entries (they share the farm store format)
CORPUS_KIND = "fuzz-corpus-entry"


def case_key(case: FuzzCase, handle) -> str | None:
    """The corpus key of *case*, or ``None`` when any of its runs has
    no canonical fingerprint (such a case is simply never deduped)."""
    from repro.farm import canonical_json, model_doc, try_fingerprint
    from repro.workbench import CheckSpec, ExploreSpec

    model = handle.execution_model
    try:
        model_document = model_doc(model)
    except Exception:
        return None
    prints = []
    for label, strategy, mode in ORACLE_CONFIGS:
        specs = [
            ExploreSpec(
                case.name,
                max_states=case.max_states,
                strategy=strategy,
                relation_mode=mode,
                label=label,
            )
        ]
        for prop in case.properties:
            specs.append(
                CheckSpec(
                    case.name,
                    prop,
                    strategy=strategy,
                    relation_mode=mode,
                    max_states=case.max_states,
                    label=label,
                )
            )
        for spec in specs:
            print_ = try_fingerprint(model, spec, model_document)
            if print_ is None:
                return None
            prints.append(print_)
    digest = hashlib.sha256(canonical_json(prints).encode("utf-8"))
    return digest.hexdigest()


class Corpus:
    """The seen-clean case corpus over one artifact store."""

    def __init__(self, store):
        self.store = store

    def seen(self, key: str | None) -> bool:
        """Whether *key* is already proven clean (``None`` never is)."""
        if key is None:
            return False
        return self.store.has(key)

    def record(self, key: str | None, case: FuzzCase, checks: int) -> None:
        """Record a clean case under *key* (no-op without a key)."""
        if key is None:
            return
        self.store.put(
            key,
            {
                "kind": CORPUS_KIND,
                "generation": GENERATION,
                "seed": case.seed,
                "index": case.index,
                "frontend": case.frontend,
                "checks": checks,
            },
        )
