"""Greedy structure-level minimization of failing fuzz cases.

The shrinker never edits rendered model text: it edits the *structure*
the generators drew (:class:`repro.fuzz.generators.FuzzCase.structure`)
and re-renders, so every candidate stays well-formed by construction.
Per front-end it tries one-step reductions — drop an agent and its
places, drop a place, drop a constraint, drop an event, zero a cycle
count or a delay, collapse rates/capacities/integer parameters to
their minimum, rebind to fewer processors, drop the non-failing
properties — and greedily accepts any candidate that still *fails the
same way*: the differential oracle reports a failure of the same kind
on the same property text. Candidates that fail to load, or that no
longer define an event a kept property mentions, are skipped, so a
shrink can narrow the model but never change what the repro means.

The result is a case whose repro document is no larger than the
original's and still fails, which is what lands in the CI artifact.
"""

from __future__ import annotations

import re
from dataclasses import replace
from typing import Iterator

from repro.fuzz.generators import (
    CCSL_RELATIONS,
    MOCCML_RELATIONS,
    FuzzCase,
    GenerationError,
    load_case_model,
    with_structure,
)
from repro.fuzz.oracle import FuzzFailure, check_case

#: event arity of every drawable constraint relation
_ARITIES = {
    name: arity for name, arity, _ranges in CCSL_RELATIONS + MOCCML_RELATIONS
}

#: the smallest valid integer-parameter tail per parameterized relation
_MIN_INT_TAILS = {
    "BoundedPrecedes": [1],
    "DelayedFor": [1],
    "Deadline": [1],
    "PeriodicOn": [1, 0],
    "FilterBy": [0, 0, 1, 1],
    "Window": [1],
}

_OCCURS = re.compile(r"occurs\(\s*([^)\s]+)\s*\)")


def referenced_events(properties: list[str]) -> set[str]:
    """Every event name an ``occurs(...)`` atom in *properties* uses."""
    events: set[str] = set()
    for text in properties:
        events.update(_OCCURS.findall(text))
    return events


def case_size(case: FuzzCase) -> int:
    """A monotone size measure (canonical-JSON length of the case)."""
    from repro.farm import canonical_json

    return len(canonical_json(case.to_doc()))


def shrink_case(
    case: FuzzCase, failure: FuzzFailure, max_attempts: int = 150
) -> tuple[FuzzCase, FuzzFailure, int]:
    """Minimize *case* while it keeps failing like *failure*.

    Returns ``(minimized_case, matching_failure, attempts)``; with no
    accepted reduction that is the original pair and the attempt count
    spent discovering so. *max_attempts* bounds oracle re-runs, so
    shrinking a pathological case terminates."""
    attempts = 0
    best_case, best_failure = case, failure

    def try_candidate(candidate: FuzzCase) -> FuzzFailure | None:
        nonlocal attempts
        attempts += 1
        return _refailure(candidate, failure)

    kept = [failure.prop] if failure.prop is not None else []
    if list(case.properties) != kept and attempts < max_attempts:
        candidate = replace(case, properties=kept)
        matched = try_candidate(candidate)
        if matched is not None:
            best_case, best_failure = candidate, matched

    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for structure in _reductions(best_case.frontend, best_case.structure):
            if attempts >= max_attempts:
                break
            candidate = with_structure(best_case, structure)
            matched = try_candidate(candidate)
            if matched is not None:
                best_case, best_failure = candidate, matched
                progress = True
                break
    return best_case, best_failure, attempts


def _refailure(case: FuzzCase, failure: FuzzFailure) -> FuzzFailure | None:
    """The candidate's failure matching *failure* (kind and property),
    or ``None`` when the candidate is invalid or no longer fails so."""
    try:
        handle = load_case_model(case)
    except GenerationError:
        return None
    if not referenced_events(case.properties) <= set(
        handle.execution_model.events
    ):
        return None
    outcome = check_case(case, handle)
    for candidate in outcome.failures:
        if candidate.kind == failure.kind and candidate.prop == failure.prop:
            return candidate
    return None


# ---------------------------------------------------------------------------
# one-step structure reductions, per front-end
# ---------------------------------------------------------------------------


def _reductions(frontend: str, structure: dict) -> Iterator[dict]:
    return _REDUCERS[frontend](structure)


def _sigpml_reductions(structure: dict) -> Iterator[dict]:
    agents = structure["agents"]
    places = structure["places"]
    if len(agents) > 1:
        for i, (name, _cycles) in enumerate(agents):
            yield {
                **structure,
                "agents": agents[:i] + agents[i + 1 :],
                "places": [
                    place
                    for place in places
                    if name not in (place[0], place[1])
                ],
            }
    for i in range(len(places)):
        yield {**structure, "places": places[:i] + places[i + 1 :]}
    for i, (name, cycles) in enumerate(agents):
        if cycles:
            yield {
                **structure,
                "agents": agents[:i] + [[name, 0]] + agents[i + 1 :],
            }
    for i, place in enumerate(places):
        producer, consumer, push, pop, capacity, delay = place
        if delay:
            reduced = [producer, consumer, push, pop, capacity, 0]
            yield {
                **structure,
                "places": places[:i] + [reduced] + places[i + 1 :],
            }
        if (push, pop, capacity) != (1, 1, 1):
            reduced = [producer, consumer, 1, 1, 1, 0]
            yield {
                **structure,
                "places": places[:i] + [reduced] + places[i + 1 :],
            }


def _deployment_reductions(structure: dict) -> Iterator[dict]:
    for application in _sigpml_reductions(structure["application"]):
        kept = {agent for agent, _cycles in application["agents"]}
        yield {
            **structure,
            "application": application,
            "bindings": [
                binding
                for binding in structure["bindings"]
                if binding[0] in kept
            ],
        }
    processors = structure["processors"]
    if len(processors) > 1:
        for i in range(len(processors)):
            remaining = processors[:i] + processors[i + 1 :]
            names = {name for name, _speed in remaining}
            target = remaining[0][0]
            yield {
                **structure,
                "processors": remaining,
                "bindings": [
                    [agent, proc if proc in names else target]
                    for agent, proc in structure["bindings"]
                ],
            }
    if structure["latency"]:
        yield {**structure, "latency": 0}
    for i, (name, speed) in enumerate(processors):
        if speed != 1:
            yield {
                **structure,
                "processors": (
                    processors[:i] + [[name, 1]] + processors[i + 1 :]
                ),
            }


def _pam_reductions(structure: dict) -> Iterator[dict]:
    cycles = structure.get("cycles")
    if cycles:
        yield {**structure, "cycles": None}
        if len(cycles) > 1:
            for agent in sorted(cycles):
                yield {
                    **structure,
                    "cycles": {
                        key: value
                        for key, value in cycles.items()
                        if key != agent
                    },
                }
    if structure["configuration"] != "mono":
        yield {**structure, "configuration": "mono"}


def _ccsl_reductions(structure: dict) -> Iterator[dict]:
    constraints = structure["constraints"]
    for i in range(len(constraints)):
        yield {
            **structure,
            "constraints": constraints[:i] + constraints[i + 1 :],
        }
    events = structure["events"]
    if len(events) > 1:
        for event in events:
            yield {
                **structure,
                "events": [e for e in events if e != event],
                "constraints": [
                    constraint
                    for constraint in constraints
                    if event not in constraint[1][: _ARITIES[constraint[0]]]
                ],
            }
    for i, (relation, args) in enumerate(constraints):
        arity = _ARITIES[relation]
        tail = _MIN_INT_TAILS.get(relation)
        if tail is not None and list(args[arity:]) != tail:
            reduced = [relation, list(args[:arity]) + tail]
            yield {
                **structure,
                "constraints": (
                    constraints[:i] + [reduced] + constraints[i + 1 :]
                ),
            }


_REDUCERS = {
    "sigpml": _sigpml_reductions,
    "deployment": _deployment_reductions,
    "pam": _pam_reductions,
    "ccsl": _ccsl_reductions,
    "moccml": _ccsl_reductions,
}
