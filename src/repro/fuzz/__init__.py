"""repro.fuzz — the continuous differential-fuzzing farm.

The engine has two independent verdict backends (explicit three-valued
exploration and symbolic BDD fixpoints, the latter under two relation
layouts) and five front-ends feeding them. That redundancy is this
package's oracle: generate a well-formed model, generate CTL properties
over its actual events, run every property through every backend
configuration, and *any* disagreement — verdict, witness, or crash —
is a bug by definition, no specification needed.

Pieces (one module each):

``rng``
    deterministic per-case random streams: everything about case
    ``(seed, index)`` is a pure function of that pair, independent of
    order, workers, and dedupe;
``generators``
    seeded structure generators + renderers for all five front-ends
    (grammar summary below), emitting exactly the model documents
    ``repro batch`` accepts;
``properties``
    seeded CTL formulas over the generated model's event alphabet,
    built as AST so they parse by construction;
``oracle``
    the differential comparison and its failure taxonomy
    (``disagreement`` / ``witness`` / ``crash``), each failure carrying
    a self-contained repro document;
``shrink``
    greedy structure-level minimization of failing cases;
``corpus``
    seen-clean dedupe over a :class:`~repro.farm.ArtifactStore`,
    keyed by farm fingerprints (engine-version-sensitive);
``runner``
    the round driver behind ``repro fuzz`` (count or time budget,
    worker fan-out, replay of emitted repro documents).

Generator grammar, per front-end
================================

``sigpml``
    ``application N { agent a_i [cycles 1-2] ; place a_i -> a_j push
    1-2 pop 1-2 capacity 1-3 [delay 1-cap] }`` — 2-4 agents, places
    form a connected DAG plus at most one extra edge; capacity is
    usually ≥ max(push, pop), deliberately sometimes smaller (valid,
    possibly starving).
``deployment``
    a ≤3-agent sigpml application plus ``platform { processor p_i
    [speed 1-2] ; connect all latency 0-2 }`` and an ``allocation``
    mapping every agent to one of 1-2 processors.
``pam``
    the bundled PAM study: configuration ``mono``/``dual`` (never
    ``infinite`` — unbounded places have no finite encoding), capacity
    1, optionally 1-2 per-agent cycle overrides.
``ccsl``
    3-5 events under 1-3 *bounded* kernel-relation instances —
    SubClock, Coincides, Excludes, Union, Intersection, Minus,
    Alternates, BoundedPrecedes, DelayedFor, SampledOn, Deadline,
    PeriodicOn, FilterBy — with dependent integer parameters drawn
    valid (offset < period; filter words fit their bit lengths).
    Unbounded Precedes/Causes are never drawn.
``moccml``
    ccsl constraints plus at least one instantiation from a fixed
    MoCCML library (a bounded sliding-window automaton ``Window`` and
    a declarative ``Chain``), so the MoCCML text parser, automata
    runtimes, and declarative instantiation are exercised.

Properties mix instantiations of the 10-template cross-check battery
(random event substitution) with random formulas over ``occurs(e)`` /
``deadlock`` / ``true`` / ``false`` closed under the boolean
connectives, the eight CTL operators, and ``leads_to``. Three in ten
cases draw a tiny explicit budget (2-30 states) so truncated
three-valued checking is under differential test too.
"""

from repro.fuzz.corpus import Corpus, case_key
from repro.fuzz.generators import (
    FRONTENDS,
    FuzzCase,
    GenerationError,
    build_case,
    generate_case,
    with_structure,
)
from repro.fuzz.oracle import (
    ORACLE_CONFIGS,
    CaseOutcome,
    FuzzFailure,
    check_case,
)
from repro.fuzz.rng import GENERATION, case_rng, sub_rng
from repro.fuzz.runner import replay_document, run_round
from repro.fuzz.shrink import case_size, shrink_case
