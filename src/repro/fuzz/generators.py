"""Seeded generators of well-formed models for all five front-ends.

Each generator draws a small *structure* — a JSON-able, shrinkable
description specific to one front-end — from a per-case random stream
and renders it into exactly the model documents
:func:`repro.workbench.source_from_doc` accepts. Generated models are
well-formed by construction (the generators only emit combinations the
parsers and weavers accept) and finitely encodable (only bounded
constraint relations are drawn), so every case exercises both verdict
backends instead of dying in the front door.

The per-front-end grammars are summarized in the package docstring
(:mod:`repro.fuzz`); the structures here are the shrinker's substrate
(:mod:`repro.fuzz.shrink` edits structures, never rendered text).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.errors import ReproError
from repro.fuzz.properties import generate_properties
from repro.fuzz.rng import case_rng, sub_rng

#: the five generated front-ends, in round-robin order
FRONTENDS = ("sigpml", "deployment", "pam", "ccsl", "moccml")

#: bounded CCSL kernel relations: (name, event arity, int parameter
#: ranges). Unbounded relations (Precedes, Causes) are deliberately
#: absent — they have no finite local encoding, so drawing them would
#: waste the symbolic half of every differential check.
CCSL_RELATIONS = (
    ("SubClock", 2, ()),
    ("Coincides", 2, ()),
    ("Excludes", 2, ()),
    ("Union", 3, ()),
    ("Intersection", 3, ()),
    ("Minus", 3, ()),
    ("Alternates", 2, ()),
    ("BoundedPrecedes", 2, ((1, 3),)),
    ("DelayedFor", 2, ((1, 3),)),
    ("SampledOn", 3, ()),
    ("Deadline", 2, ((1, 3),)),
    ("PeriodicOn", 2, ()),  # period/offset drawn dependently
    ("FilterBy", 2, ()),  # binary-word ints drawn dependently
)

#: PAM study configurations drawn by the generator ("infinite" is
#: excluded: unbounded places have no finite local encoding)
PAM_CONFIGURATIONS = ("mono", "dual")

#: agents of the PAM application (cycle overrides draw from these)
PAM_AGENTS = (
    "hydro",
    "framer",
    "fft",
    "detect",
    "spectro",
    "classify",
    "fusion",
    "logger",
)

#: the fixed helper library of the ``moccml`` front-end: a bounded
#: sliding-window automaton plus a declarative alternation, so cases
#: exercise the MoCCML text parser, automata runtimes, and declarative
#: instantiation on top of the kernel relations
MOCCML_LIBRARY = """\
library FuzzLib {
  declaration Window(request: event, response: event, max: int)
  declaration Chain(first: event, second: event)

  automaton WindowDef implements Window {
    var inflight: int = 0
    initial final state Open
    transition Open -> Open when {request} unless {response} \\
        [inflight < max] / inflight += 1
    transition Open -> Open when {response} unless {request} \\
        [inflight > 0] / inflight -= 1
    transition Open -> Open when {request, response} \\
        [inflight > 0 and inflight < max]
  }

  declarative ChainDef implements Chain {
    Alternates(first, second)
  }
}
"""

#: extra relations available to ``moccml`` cases via MOCCML_LIBRARY
MOCCML_RELATIONS = (
    ("Window", 2, ((1, 3),)),
    ("Chain", 2, ()),
)


class GenerationError(ReproError):
    """A generated structure failed to load — a generator bug."""


@dataclass
class FuzzCase:
    """One generated differential-fuzzing case.

    ``structure`` is the front-end-specific JSON-able description the
    generators drew and the shrinker edits; ``properties`` are CTL
    texts over the loaded model's actual events; ``max_states`` is the
    explicit backend's exploration budget (drawn small for a fraction
    of cases, so truncated three-valued checking is exercised too).
    """

    seed: int
    index: int
    frontend: str
    structure: dict
    properties: list[str] = field(default_factory=list)
    max_states: int = 2500

    @property
    def name(self) -> str:
        """The model name every run spec in this case refers to."""
        return self.structure["name"]

    def model_doc(self) -> dict:
        """The ``source_from_doc`` model document of this case."""
        return render_model_doc(self.frontend, self.structure)

    def to_doc(self) -> dict:
        """A JSON description of the case (reports, repro documents)."""
        return {
            "seed": self.seed,
            "index": self.index,
            "frontend": self.frontend,
            "model": self.model_doc(),
            "properties": list(self.properties),
            "max_states": self.max_states,
        }


# ---------------------------------------------------------------------------
# structure generators (one per front-end)
# ---------------------------------------------------------------------------


def _gen_sigpml_structure(rng: random.Random, name: str) -> dict:
    """agents + places: a connected DAG with small rates/capacities."""
    n_agents = rng.randint(2, 4)
    agents = []
    for i in range(n_agents):
        cycles = rng.randint(1, 2) if rng.random() < 0.25 else 0
        agents.append([f"a{i}", cycles])
    places = []
    seen_pairs = set()
    for i in range(1, n_agents):
        source = rng.randrange(i)
        places.append(_draw_place(rng, f"a{source}", f"a{i}"))
        seen_pairs.add((source, i))
    for _ in range(rng.randint(0, 1)):
        i, j = sorted(rng.sample(range(n_agents), 2))
        if (i, j) in seen_pairs:
            continue
        seen_pairs.add((i, j))
        places.append(_draw_place(rng, f"a{i}", f"a{j}"))
    return {"name": name, "agents": agents, "places": places}


def _draw_place(rng: random.Random, producer: str, consumer: str) -> list:
    push = rng.randint(1, 2)
    pop = rng.randint(1, 2)
    if rng.random() < 0.1:
        capacity = rng.randint(1, 3)  # possibly starving — still valid
    else:
        capacity = rng.randint(max(push, pop), 3)
    delay = rng.randint(1, capacity) if rng.random() < 0.2 else 0
    return [producer, consumer, push, pop, capacity, delay]


def _gen_deployment_structure(rng: random.Random, name: str) -> dict:
    """a small application deployed on 1-2 processors, fully linked."""
    application = _gen_sigpml_structure(rng, name)
    application["agents"] = application["agents"][:3]
    agent_names = {agent for agent, _cycles in application["agents"]}
    application["places"] = [
        place
        for place in application["places"]
        if place[0] in agent_names and place[1] in agent_names
    ]
    n_processors = rng.randint(1, 2)
    processors = []
    for i in range(n_processors):
        speed = rng.randint(1, 2) if rng.random() < 0.3 else 1
        processors.append([f"p{i}", speed])
    bindings = [
        [agent, f"p{rng.randrange(n_processors)}"]
        for agent, _cycles in application["agents"]
    ]
    return {
        "name": name,
        "application": application,
        "platform": f"{name}_platform",
        "processors": processors,
        "latency": rng.randint(0, 2),
        "bindings": bindings,
    }


def _gen_pam_structure(rng: random.Random, name: str) -> dict:
    """one configuration of the bundled PAM deployment study."""
    cycles = None
    if rng.random() < 0.4:
        chosen = rng.sample(PAM_AGENTS, rng.randint(1, 2))
        cycles = {agent: rng.randint(1, 2) for agent in sorted(chosen)}
    return {
        "name": name,
        "configuration": rng.choice(PAM_CONFIGURATIONS),
        "capacity": 1,
        "cycles": cycles,
    }


def _draw_constraints(
    rng: random.Random,
    events: list[str],
    relations,
    count: int,
) -> list:
    constraints = []
    for _ in range(count):
        relation, arity, int_ranges = rng.choice(relations)
        if arity > len(events):
            continue
        args = rng.sample(events, arity)
        for low, high in int_ranges:
            args.append(rng.randint(low, high))
        if relation == "PeriodicOn":  # offset must stay below period
            period = rng.randint(1, 3)
            args.extend([period, rng.randrange(period)])
        elif relation == "FilterBy":  # word ints must fit their lengths
            prefix_len = rng.randint(0, 2)
            period_len = rng.randint(1, 3)
            args.extend(
                [
                    rng.randrange(1 << prefix_len),
                    prefix_len,
                    rng.randrange(1 << period_len),
                    period_len,
                ]
            )
        constraints.append([relation, args])
    return constraints


def _gen_ccsl_structure(rng: random.Random, name: str) -> dict:
    """events + bounded kernel-relation instances."""
    events = [f"e{i}" for i in range(rng.randint(3, 5))]
    constraints = _draw_constraints(
        rng, events, CCSL_RELATIONS, rng.randint(1, 3)
    )
    return {"name": name, "events": events, "constraints": constraints}


def _gen_moccml_structure(rng: random.Random, name: str) -> dict:
    """ccsl plus instantiations of the fixed FuzzLib automata."""
    structure = _gen_ccsl_structure(rng, name)
    library_relations = CCSL_RELATIONS + MOCCML_RELATIONS
    structure["constraints"] = _draw_constraints(
        rng, structure["events"], library_relations, rng.randint(1, 3)
    )
    if not any(
        relation in ("Window", "Chain")
        for relation, _args in structure["constraints"]
    ):
        structure["constraints"].extend(
            _draw_constraints(
                rng, structure["events"], MOCCML_RELATIONS, 1
            )
        )
    return structure


_STRUCTURE_GENERATORS = {
    "sigpml": _gen_sigpml_structure,
    "deployment": _gen_deployment_structure,
    "pam": _gen_pam_structure,
    "ccsl": _gen_ccsl_structure,
    "moccml": _gen_moccml_structure,
}


# ---------------------------------------------------------------------------
# rendering structures into model documents
# ---------------------------------------------------------------------------


def render_sigpml(structure: dict) -> str:
    """The SigPML text of a sigpml structure."""
    lines = [f"application {structure['name']} {{"]
    for agent, cycles in structure["agents"]:
        suffix = f" cycles {cycles}" if cycles else ""
        lines.append(f"  agent {agent}{suffix}")
    for producer, consumer, push, pop, capacity, delay in structure["places"]:
        line = (
            f"  place {producer} -> {consumer} "
            f"push {push} pop {pop} capacity {capacity}"
        )
        if delay:
            line += f" delay {delay}"
        lines.append(line)
    lines.append("}")
    return "\n".join(lines) + "\n"


def render_deployment(structure: dict) -> tuple[str, str]:
    """(application text, platform+allocation text) of a deployment."""
    application_text = render_sigpml(structure["application"])
    lines = [f"platform {structure['platform']} {{"]
    for processor, speed in structure["processors"]:
        suffix = f" speed {speed}" if speed != 1 else ""
        lines.append(f"  processor {processor}{suffix}")
    if len(structure["processors"]) > 1:
        lines.append(f"  connect all latency {structure['latency']}")
    lines.append("}")
    lines.append("allocation {")
    by_processor: dict[str, list[str]] = {}
    for agent, processor in structure["bindings"]:
        by_processor.setdefault(processor, []).append(agent)
    for processor, _speed in structure["processors"]:
        agents = by_processor.get(processor)
        if agents:
            lines.append(f"  {', '.join(agents)} -> {processor}")
    lines.append("}")
    return application_text, "\n".join(lines) + "\n"


def _constraint_docs(constraints: list) -> list[dict]:
    return [
        {"relation": relation, "args": list(args)}
        for relation, args in constraints
    ]


def render_model_doc(frontend: str, structure: dict) -> dict:
    """The ``source_from_doc`` model document of one structure."""
    if frontend == "sigpml":
        return {"frontend": "sigpml", "text": render_sigpml(structure)}
    if frontend == "deployment":
        application_text, deployment_text = render_deployment(structure)
        return {
            "frontend": "deployment",
            "application_text": application_text,
            "deployment_text": deployment_text,
            "name": structure["name"],
        }
    if frontend == "pam":
        doc = {
            "frontend": "pam",
            "configuration": structure["configuration"],
            "capacity": structure["capacity"],
        }
        if structure.get("cycles"):
            doc["cycles"] = dict(structure["cycles"])
        return doc
    if frontend in ("ccsl", "moccml"):
        doc = {
            "frontend": frontend,
            "name": structure["name"],
            "events": list(structure["events"]),
            "constraints": _constraint_docs(structure["constraints"]),
        }
        if frontend == "moccml":
            doc["library_text"] = MOCCML_LIBRARY
        return doc
    raise GenerationError(f"unknown fuzz front-end {frontend!r}")


#: structure redraws before a case gives up as a generator error; the
#: observed ERROR rate per draw is a few percent, so this bound is
#: unreachable short of an analyzer regression
_MAX_STRUCTURE_DRAWS = 25


def _lint_errors(handle) -> list:
    """ERROR-severity static findings on a freshly drawn model."""
    from repro.lint import lint_handle

    return lint_handle(handle).errors


def load_case_model(case: FuzzCase):
    """Load the case's model document into a fresh
    :class:`~repro.workbench.frontends.ModelHandle` named
    ``case.name``. A load failure means the generators emitted an
    ill-formed structure — that is a bug, reported loudly."""
    from repro.workbench import load, source_from_doc

    doc = case.model_doc()
    try:
        return load(source_from_doc(doc), name=case.name)
    except ReproError as exc:
        raise GenerationError(
            f"generated case (seed={case.seed}, index={case.index}, "
            f"frontend={case.frontend}) does not load: {exc}"
        ) from exc


# ---------------------------------------------------------------------------
# the case generator
# ---------------------------------------------------------------------------


def generate_case(
    seed: int, index: int, frontend: str | None = None
) -> FuzzCase:
    """Generate case *index* of round *seed* (see :func:`build_case`
    for the loaded-handle variant the oracle uses)."""
    case, _handle = build_case(seed, index, frontend=frontend)
    return case


def build_case(seed: int, index: int, frontend: str | None = None):
    """Generate one case and load its model: ``(case, handle)``.

    The front-end defaults to round-robin over :data:`FRONTENDS`, so
    any contiguous index range covers all five. Properties are drawn
    over the *loaded* model's actual event alphabet, never over guessed
    names. Structures the static analyzer flags with an ERROR are
    redrawn (deterministically), so every emitted case is lint-clean —
    the oracle's ``static`` failure kind then signals analyzer/engine
    disagreement, never expected generator noise.
    """
    if frontend is None:
        frontend = FRONTENDS[index % len(FRONTENDS)]
    if frontend not in _STRUCTURE_GENERATORS:
        raise GenerationError(
            f"unknown fuzz front-end {frontend!r}; expected one of "
            f"{', '.join(FRONTENDS)}"
        )
    rng = case_rng(seed, index)
    name = f"fuzz_{frontend}_{seed}_{index}"
    for _attempt in range(_MAX_STRUCTURE_DRAWS):
        structure = _STRUCTURE_GENERATORS[frontend](rng, name)
        max_states = (
            rng.randint(2, 30) if rng.random() < 0.3 else 2500
        )
        case = FuzzCase(
            seed=seed,
            index=index,
            frontend=frontend,
            structure=structure,
            max_states=max_states,
        )
        handle = load_case_model(case)
        # generated models are lint-clean by construction: a draw the
        # static analyzer rejects (rate-inconsistent graph, strict
        # precedence cycle, contradictory parameters...) is redrawn
        # from the same deterministic stream, so build_case stays a
        # pure function of (seed, index) and any surviving ERROR in
        # the oracle is a real lint-vs-engine disagreement
        if not _lint_errors(handle):
            break
    else:
        raise GenerationError(
            f"generated case (seed={seed}, index={index}, "
            f"frontend={frontend}) still has lint errors after "
            f"{_MAX_STRUCTURE_DRAWS} draws"
        )
    property_rng = sub_rng(rng, "properties")
    case.properties = generate_properties(
        property_rng, list(handle.execution_model.events), count=3
    )
    return case, handle


def with_structure(case: FuzzCase, structure: dict) -> FuzzCase:
    """A copy of *case* carrying *structure* (the shrinker's edit)."""
    return replace(case, structure=structure)
