"""Deterministic per-case random streams.

Every fuzz case draws from its own :class:`random.Random` seeded by the
string ``"repro-fuzz:<seed>:<index>"``. Seeding from a string hashes it
through SHA-512 (CPython's documented behavior), so the stream depends
only on the round seed and the case index — never on generation order,
worker count, or which earlier cases were deduplicated. That is the
whole determinism story: the same ``(seed, index)`` pair produces
byte-identical model documents and property texts on any machine, in
any thread, in any round.
"""

from __future__ import annotations

import random

#: bump when the generator grammar changes incompatibly — it reseeds
#: every stream, so corpora and regression seeds do not silently drift
GENERATION = 2  # 2: structures are redrawn until lint-clean


def case_rng(seed: int, index: int) -> random.Random:
    """The private random stream of case *index* in round *seed*."""
    return random.Random(f"repro-fuzz:{GENERATION}:{seed}:{index}")


def sub_rng(rng: random.Random, tag: str) -> random.Random:
    """A derived stream for one generation aspect (e.g. properties), so
    changes to one aspect's draw count do not reshuffle the others."""
    return random.Random(f"{tag}:{rng.getrandbits(64)}")
