"""JSON (de)serialization for metamodels and models.

The original tooling persists Ecore/XMI; we use a stable JSON form
instead. Elements are identified by integer ids local to the document;
cross-references are serialized as ``{"$ref": id}`` markers.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import SerializationError
from repro.kernel.metamodel import (
    MetaAttribute,
    MetaClass,
    MetaModel,
    MetaReference,
)
from repro.kernel.mobject import MObject
from repro.kernel.model import Model

FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# metamodels
# ---------------------------------------------------------------------------


def metamodel_to_json(metamodel: MetaModel) -> str:
    """Serialize *metamodel* to a JSON string."""
    doc = {
        "format": FORMAT_VERSION,
        "kind": "metamodel",
        "name": metamodel.name,
        "classes": [_class_to_dict(cls) for cls in metamodel],
    }
    return json.dumps(doc, indent=2)


def _class_to_dict(cls: MetaClass) -> dict[str, Any]:
    return {
        "name": cls.name,
        "abstract": cls.abstract,
        "supertypes": list(cls.supertypes),
        "attributes": [
            {
                "name": attr.name,
                "type": attr.type_name,
                "many": attr.many,
                "optional": attr.optional,
                "default": attr.default,
            }
            for attr in cls.attributes.values()
        ],
        "references": [
            {
                "name": ref.name,
                "target": ref.target,
                "many": ref.many,
                "containment": ref.containment,
                "optional": ref.optional,
            }
            for ref in cls.references.values()
        ],
    }


def metamodel_from_json(text: str) -> MetaModel:
    """Parse a metamodel previously produced by :func:`metamodel_to_json`."""
    doc = _load(text, expected_kind="metamodel")
    metamodel = MetaModel(doc["name"])
    for cls_doc in doc["classes"]:
        cls = MetaClass(
            cls_doc["name"],
            supertypes=list(cls_doc.get("supertypes", [])),
            abstract=bool(cls_doc.get("abstract", False)),
        )
        for attr_doc in cls_doc.get("attributes", []):
            cls.add_attribute(MetaAttribute(
                attr_doc["name"], attr_doc["type"],
                default=attr_doc.get("default"),
                many=bool(attr_doc.get("many", False)),
                optional=bool(attr_doc.get("optional", False))))
        for ref_doc in cls_doc.get("references", []):
            cls.add_reference(MetaReference(
                ref_doc["name"], ref_doc["target"],
                many=bool(ref_doc.get("many", False)),
                containment=bool(ref_doc.get("containment", False)),
                optional=bool(ref_doc.get("optional", True))))
        metamodel.add(cls)
    metamodel.resolve()
    return metamodel


# ---------------------------------------------------------------------------
# models
# ---------------------------------------------------------------------------


def model_to_json(model: Model) -> str:
    """Serialize *model* (roots plus contents) to a JSON string."""
    elements = list(model)
    ids = {id(element): index for index, element in enumerate(elements)}

    def encode(value: object) -> object:
        if isinstance(value, MObject):
            if id(value) not in ids:
                raise SerializationError(
                    f"{value.label()} referenced but not inside the model")
            return {"$ref": ids[id(value)]}
        if isinstance(value, list):
            return [encode(item) for item in value]
        return value

    element_docs = []
    for element in elements:
        slots: dict[str, object] = {}
        for attr in element.meta.all_attributes().values():
            if element.is_set(attr.name):
                slots[attr.name] = encode(element.get(attr.name))
        for ref in element.meta.all_references().values():
            if element.is_set(ref.name):
                slots[ref.name] = encode(element.get(ref.name))
        element_docs.append({
            "id": ids[id(element)],
            "class": element.meta.name,
            "slots": slots,
        })

    doc = {
        "format": FORMAT_VERSION,
        "kind": "model",
        "name": model.name,
        "metamodel": model.metamodel.name,
        "roots": [ids[id(root)] for root in model.roots],
        "elements": element_docs,
    }
    return json.dumps(doc, indent=2)


def model_from_json(text: str, metamodel: MetaModel) -> Model:
    """Parse a model document against *metamodel*."""
    doc = _load(text, expected_kind="model")
    if doc.get("metamodel") != metamodel.name:
        raise SerializationError(
            f"document was saved against metamodel {doc.get('metamodel')!r}, "
            f"not {metamodel.name!r}")
    model = Model(metamodel, doc.get("name", "model"))

    instances: dict[int, MObject] = {}
    for element_doc in doc["elements"]:
        instances[element_doc["id"]] = metamodel.instantiate(element_doc["class"])

    def decode(value: object) -> object:
        if isinstance(value, dict) and "$ref" in value:
            try:
                return instances[value["$ref"]]
            except KeyError:
                raise SerializationError(
                    f"dangling reference id {value['$ref']}") from None
        if isinstance(value, list):
            return [decode(item) for item in value]
        return value

    for element_doc in doc["elements"]:
        element = instances[element_doc["id"]]
        for slot_name, raw in element_doc["slots"].items():
            element.set(slot_name, decode(raw))

    for root_id in doc["roots"]:
        model.add_root(instances[root_id])
    return model


def _load(text: str, expected_kind: str) -> dict[str, Any]:
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("kind") != expected_kind:
        raise SerializationError(f"expected a {expected_kind} document")
    if doc.get("format") != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported format version {doc.get('format')!r}")
    return doc
