"""MOF-lite metamodeling kernel.

The paper's tooling lives inside the Eclipse Modeling Framework: DSL
abstract syntaxes are Ecore metamodels and models are EMF object graphs.
This package is the pure-Python substitute: it provides metaclasses with
attributes and references, model elements (:class:`MObject`) that conform
to them, model containers, conformance validation, dotted-path navigation
(the fragment of OCL that ECL mappings need) and JSON serialization.

Quick tour::

    from repro.kernel import MetamodelBuilder

    b = MetamodelBuilder("Library")
    b.metaclass("Book", attributes={"title": "str", "pages": "int"})
    b.metaclass("Shelf", references={"books": ("Book", "many")})
    mm = b.build()

    shelf = mm.instantiate("Shelf")
    book = mm.instantiate("Book", title="SICP", pages=657)
    shelf.add("books", book)
"""

from repro.kernel.metamodel import (
    MetaAttribute,
    MetaClass,
    MetaModel,
    MetaReference,
    PRIMITIVE_TYPES,
)
from repro.kernel.mobject import MObject
from repro.kernel.model import Model
from repro.kernel.builder import MetamodelBuilder
from repro.kernel.navigation import navigate, navigate_path
from repro.kernel.validation import check_conformance
from repro.kernel.serialize import (
    metamodel_from_json,
    metamodel_to_json,
    model_from_json,
    model_to_json,
)

__all__ = [
    "MetaAttribute",
    "MetaClass",
    "MetaModel",
    "MetaReference",
    "MObject",
    "Model",
    "MetamodelBuilder",
    "PRIMITIVE_TYPES",
    "navigate",
    "navigate_path",
    "check_conformance",
    "metamodel_to_json",
    "metamodel_from_json",
    "model_to_json",
    "model_from_json",
]
