"""Identifier and qualified-name helpers shared by the kernel and parsers."""

from __future__ import annotations

import re

from repro.errors import MetamodelError

_IDENTIFIER_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def is_identifier(name: str) -> bool:
    """Return True when *name* is a valid simple identifier."""
    return bool(_IDENTIFIER_RE.match(name))


def check_identifier(name: str, what: str = "identifier") -> str:
    """Validate *name* and return it; raise :class:`MetamodelError` otherwise."""
    if not isinstance(name, str) or not is_identifier(name):
        raise MetamodelError(f"invalid {what}: {name!r}")
    return name


def qualify(*parts: str) -> str:
    """Join name parts into a dotted qualified name, skipping empty parts."""
    return ".".join(p for p in parts if p)


def split_qualified(name: str) -> list[str]:
    """Split a dotted qualified name into its parts."""
    if not name:
        return []
    return name.split(".")
