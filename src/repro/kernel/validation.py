"""Model-to-metamodel conformance checking.

Slot assignment already performs eager type checks; this module adds the
whole-model checks that can only run once a model is complete: required
features are set, containment is well-formed (single container, no
cycles) and every referenced element is reachable from the model roots.
"""

from __future__ import annotations

from repro.errors import ConformanceError
from repro.kernel.mobject import MObject
from repro.kernel.model import Model


def check_conformance(model: Model, strict_closure: bool = True) -> list[str]:
    """Validate *model*; return the list of diagnostics (empty when valid).

    With ``strict_closure`` every element referenced by a cross-link must
    itself be part of the model (reachable from a root), mirroring EMF's
    single-resource assumption used throughout this reproduction.
    """
    issues: list[str] = []
    elements = list(model)
    element_set = {id(element) for element in elements}

    for element in elements:
        issues.extend(_check_required(element))
        issues.extend(_check_abstract(element))
        if strict_closure:
            issues.extend(_check_closure(element, element_set))
    issues.extend(_check_containment(elements))
    return issues


def assert_conformance(model: Model) -> None:
    """Raise :class:`ConformanceError` when *model* has any diagnostic."""
    issues = check_conformance(model)
    if issues:
        raise ConformanceError("; ".join(issues))


def _check_required(element: MObject) -> list[str]:
    issues = []
    for attr in element.meta.all_attributes().values():
        if attr.optional or attr.many:
            continue
        if not element.is_set(attr.name):
            issues.append(
                f"{element.label()}: required attribute {attr.name!r} unset")
    for ref in element.meta.all_references().values():
        if ref.optional or ref.many:
            continue
        if not element.is_set(ref.name):
            issues.append(
                f"{element.label()}: required reference {ref.name!r} unset")
    return issues


def _check_abstract(element: MObject) -> list[str]:
    if element.meta.abstract:
        return [f"{element.label()}: instance of abstract metaclass"]
    return []


def _check_closure(element: MObject, element_set: set[int]) -> list[str]:
    issues = []
    for ref in element.meta.all_references().values():
        value = element.get(ref.name)
        targets = value if isinstance(value, list) else [value]
        for target in targets:
            if target is None:
                continue
            if id(target) not in element_set:
                issues.append(
                    f"{element.label()}.{ref.name} points outside the model "
                    f"({target.label()})")
    return issues


def _check_containment(elements: list[MObject]) -> list[str]:
    """Detect containment cycles by walking container chains."""
    issues = []
    for element in elements:
        seen: set[int] = set()
        cursor = element
        while cursor is not None:
            if id(cursor) in seen:
                issues.append(
                    f"{element.label()}: containment cycle detected")
                break
            seen.add(id(cursor))
            cursor = cursor.container
    return issues
