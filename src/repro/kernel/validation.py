"""Model-to-metamodel conformance checking.

Slot assignment already performs eager type checks; this module adds the
whole-model checks that can only run once a model is complete: required
features are set, containment is well-formed (single container, no
cycles) and every referenced element is reachable from the model roots.

Findings are structured :class:`ConformanceDiagnostic` records (stable
rule ID, element path, offending feature, message) so downstream tools
— ``repro lint`` surfaces them as the ``KER***`` rules — can report
them without parsing strings; :func:`check_conformance` keeps the
historical plain-string API as a shim over the same records.

Rule catalog:

========  ==========================================================
``KER001``  required attribute or reference unset
``KER002``  instance of an abstract metaclass
``KER003``  cross-reference points outside the model closure
``KER004``  containment cycle
========  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConformanceError
from repro.kernel.mobject import MObject
from repro.kernel.model import Model


@dataclass(frozen=True)
class ConformanceDiagnostic:
    """One structured conformance finding.

    ``path`` is the offending element's label, ``feature`` the attribute
    or reference at fault (``None`` for element-level findings) and
    ``message`` the historical human-readable line — exactly the string
    the old list-of-strings API returned, so ``str(diagnostic)`` keeps
    error texts stable.
    """

    rule: str
    path: str
    feature: str | None
    message: str

    def __str__(self) -> str:
        return self.message

    def to_doc(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "feature": self.feature,
            "message": self.message,
        }


def conformance_diagnostics(
        model: Model, strict_closure: bool = True
) -> list[ConformanceDiagnostic]:
    """Validate *model*; return structured diagnostics (empty when
    valid).

    With ``strict_closure`` every element referenced by a cross-link
    must itself be part of the model (reachable from a root), mirroring
    EMF's single-resource assumption used throughout this reproduction.
    """
    diagnostics: list[ConformanceDiagnostic] = []
    elements = list(model)
    element_set = {id(element) for element in elements}

    for element in elements:
        diagnostics.extend(_check_required(element))
        diagnostics.extend(_check_abstract(element))
        if strict_closure:
            diagnostics.extend(_check_closure(element, element_set))
    diagnostics.extend(_check_containment(elements))
    return diagnostics


def check_conformance(model: Model, strict_closure: bool = True) -> list[str]:
    """String shim over :func:`conformance_diagnostics` (the historical
    API): the list of human-readable messages, empty when valid."""
    return [diagnostic.message
            for diagnostic in conformance_diagnostics(model, strict_closure)]


def assert_conformance(model: Model) -> None:
    """Raise :class:`ConformanceError` when *model* has any diagnostic."""
    issues = check_conformance(model)
    if issues:
        raise ConformanceError("; ".join(issues))


def _check_required(element: MObject) -> list[ConformanceDiagnostic]:
    diagnostics = []
    for attr in element.meta.all_attributes().values():
        if attr.optional or attr.many:
            continue
        if not element.is_set(attr.name):
            diagnostics.append(ConformanceDiagnostic(
                rule="KER001", path=element.label(), feature=attr.name,
                message=f"{element.label()}: required attribute "
                        f"{attr.name!r} unset"))
    for ref in element.meta.all_references().values():
        if ref.optional or ref.many:
            continue
        if not element.is_set(ref.name):
            diagnostics.append(ConformanceDiagnostic(
                rule="KER001", path=element.label(), feature=ref.name,
                message=f"{element.label()}: required reference "
                        f"{ref.name!r} unset"))
    return diagnostics


def _check_abstract(element: MObject) -> list[ConformanceDiagnostic]:
    if element.meta.abstract:
        return [ConformanceDiagnostic(
            rule="KER002", path=element.label(), feature=None,
            message=f"{element.label()}: instance of abstract metaclass")]
    return []


def _check_closure(element: MObject,
                   element_set: set[int]) -> list[ConformanceDiagnostic]:
    diagnostics = []
    for ref in element.meta.all_references().values():
        value = element.get(ref.name)
        targets = value if isinstance(value, list) else [value]
        for target in targets:
            if target is None:
                continue
            if id(target) not in element_set:
                diagnostics.append(ConformanceDiagnostic(
                    rule="KER003", path=element.label(), feature=ref.name,
                    message=f"{element.label()}.{ref.name} points outside "
                            f"the model ({target.label()})"))
    return diagnostics


def _check_containment(
        elements: list[MObject]) -> list[ConformanceDiagnostic]:
    """Detect containment cycles by walking container chains."""
    diagnostics = []
    for element in elements:
        seen: set[int] = set()
        cursor = element
        while cursor is not None:
            if id(cursor) in seen:
                diagnostics.append(ConformanceDiagnostic(
                    rule="KER004", path=element.label(), feature=None,
                    message=f"{element.label()}: containment cycle "
                            f"detected"))
                break
            seen.add(id(cursor))
            cursor = cursor.container
    return diagnostics
