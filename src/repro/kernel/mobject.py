"""Model elements: typed instances of metaclasses.

An :class:`MObject` stores one slot per feature of its metaclass. Slot
access is checked eagerly: assigning a value of the wrong primitive type,
or linking an element of a non-conforming metaclass, raises
:class:`~repro.errors.ConformanceError` at the assignment site rather
than at validation time.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Optional

from repro.errors import ConformanceError
from repro.kernel.metamodel import MetaAttribute, MetaClass, MetaReference

_ids = itertools.count(1)


class MObject:
    """An instance of a :class:`~repro.kernel.metamodel.MetaClass`.

    Elements are identified by an auto-assigned ``uid`` plus, when the
    metaclass has a ``name`` attribute, by that name — which is how ECL
    mappings and diagnostics refer to them.
    """

    __slots__ = ("meta", "uid", "_slots", "_container")

    def __init__(self, meta: MetaClass):
        self.meta = meta
        self.uid = next(_ids)
        self._slots: dict[str, object] = {}
        self._container: Optional[MObject] = None
        for attr in meta.all_attributes().values():
            if attr.many:
                self._slots[attr.name] = []
            elif attr.default is not None:
                self._slots[attr.name] = attr.default
        for ref in meta.all_references().values():
            if ref.many:
                self._slots[ref.name] = []

    # -- identity ------------------------------------------------------------

    @property
    def name(self) -> str | None:
        """The ``name`` attribute value if the metaclass defines one."""
        value = self._slots.get("name")
        return value if isinstance(value, str) else None

    @property
    def container(self) -> Optional["MObject"]:
        """The element owning this one through a containment reference."""
        return self._container

    def label(self) -> str:
        """A human-readable identification used in diagnostics."""
        if self.name is not None:
            return f"{self.meta.name}:{self.name}"
        return f"{self.meta.name}#{self.uid}"

    # -- feature access -------------------------------------------------------

    def _feature(self, feature_name: str) -> MetaAttribute | MetaReference:
        feature = self.meta.feature(feature_name)
        if feature is None:
            raise ConformanceError(
                f"{self.label()} has no feature {feature_name!r}")
        return feature

    def get(self, feature_name: str) -> object:
        """Return the slot value (a list for *many* features, possibly None)."""
        feature = self._feature(feature_name)
        if feature.many:
            return list(self._slots.get(feature_name, []))
        return self._slots.get(feature_name)

    def set(self, feature_name: str, value: object) -> None:
        """Assign a slot. For *many* features pass the full list."""
        feature = self._feature(feature_name)
        if feature.many:
            if not isinstance(value, (list, tuple)):
                raise ConformanceError(
                    f"{self.label()}.{feature_name} is many-valued; "
                    f"expected a list, got {type(value).__name__}")
            current = list(self._slots.get(feature_name, []))
            for item in current:
                self._unlink(feature, item)
            self._slots[feature_name] = []
            for item in value:
                self.add(feature_name, item)
            return
        self._check_value(feature, value)
        if feature.kind == "reference":
            old = self._slots.get(feature_name)
            if old is not None:
                self._unlink(feature, old)
            if value is not None:
                self._link(feature, value)
        self._slots[feature_name] = value

    def add(self, feature_name: str, value: object) -> None:
        """Append *value* to a many-valued slot."""
        feature = self._feature(feature_name)
        if not feature.many:
            raise ConformanceError(
                f"{self.label()}.{feature_name} is single-valued; use set()")
        self._check_value(feature, value)
        if feature.kind == "reference":
            self._link(feature, value)
        self._slots.setdefault(feature_name, [])
        self._slots[feature_name].append(value)  # type: ignore[union-attr]

    def is_set(self, feature_name: str) -> bool:
        """True when the slot holds a value (non-empty list for many)."""
        feature = self._feature(feature_name)
        value = self._slots.get(feature_name)
        if feature.many:
            return bool(value)
        return value is not None

    def _check_value(self, feature, value: object) -> None:
        if value is None:
            return
        if feature.kind == "attribute":
            if not feature.accepts(value):
                raise ConformanceError(
                    f"{self.label()}.{feature.name} expects {feature.type_name}, "
                    f"got {value!r}")
        else:
            if not isinstance(value, MObject):
                raise ConformanceError(
                    f"{self.label()}.{feature.name} expects a model element, "
                    f"got {value!r}")
            if not value.meta.conforms_to(feature.target):
                raise ConformanceError(
                    f"{self.label()}.{feature.name} expects {feature.target}, "
                    f"got {value.label()}")

    def _link(self, reference: MetaReference, target: "MObject") -> None:
        if reference.containment:
            if target._container is not None and target._container is not self:
                raise ConformanceError(
                    f"{target.label()} is already contained in "
                    f"{target._container.label()}")
            target._container = self

    def _unlink(self, reference, target: object) -> None:
        if reference.kind == "reference" and reference.containment:
            if isinstance(target, MObject) and target._container is self:
                target._container = None

    # -- traversal -------------------------------------------------------------

    def contents(self) -> Iterator["MObject"]:
        """Directly contained elements (containment references only)."""
        for ref in self.meta.all_references().values():
            if not ref.containment:
                continue
            value = self._slots.get(ref.name)
            if ref.many:
                yield from value  # type: ignore[misc]
            elif value is not None:
                yield value  # type: ignore[misc]

    def all_contents(self) -> Iterator["MObject"]:
        """Transitively contained elements, depth first."""
        for child in self.contents():
            yield child
            yield from child.all_contents()

    def __repr__(self) -> str:
        return f"<{self.label()}>"
