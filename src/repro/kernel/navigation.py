"""Dotted-path navigation over model elements.

This is the fragment of OCL the ECL mapping language needs: starting
from ``self`` (a model element), follow attribute and reference names,
flattening over collections. ``self.outputPort.rate`` on a Place yields
the producing port's rate; ``self.agents.inputs`` on an Application
yields every input port of every agent.
"""

from __future__ import annotations

from repro.errors import NavigationError
from repro.kernel.mobject import MObject


def navigate(element: MObject, path: str) -> object:
    """Evaluate dotted *path* from *element*.

    A leading ``self`` segment is accepted and ignored. Navigation over a
    many-valued feature flattens: the remainder of the path is applied to
    each item and results are concatenated, mirroring OCL's implicit
    ``collect``. Scalars pass through unchanged.
    """
    segments = [seg for seg in path.split(".") if seg]
    if segments and segments[0] == "self":
        segments = segments[1:]
    return navigate_path(element, segments)


def navigate_path(element: MObject, segments: list[str]) -> object:
    """Evaluate a pre-split navigation path (see :func:`navigate`)."""
    current: object = element
    for index, segment in enumerate(segments):
        current = _step(current, segment, segments, index)
    return current


def _step(value: object, segment: str, segments: list[str], index: int) -> object:
    if isinstance(value, list):
        collected: list[object] = []
        for item in value:
            result = _step(item, segment, segments, index)
            if isinstance(result, list):
                collected.extend(result)
            else:
                collected.append(result)
        return collected
    if isinstance(value, MObject):
        feature = value.meta.feature(segment)
        if feature is None:
            path = ".".join(segments)
            raise NavigationError(
                f"{value.label()} has no feature {segment!r} "
                f"(while navigating {path!r})")
        return value.get(segment)
    path = ".".join(segments[: index + 1])
    raise NavigationError(
        f"cannot navigate {segment!r}: {path!r} reached the "
        f"non-element value {value!r}")
