"""Fluent construction of metamodels.

:class:`MetamodelBuilder` turns the verbose MetaClass/MetaAttribute/
MetaReference plumbing into compact declarations::

    b = MetamodelBuilder("SigPML")
    b.metaclass("NamedElement", attributes={"name": "str"}, abstract=True)
    b.metaclass("Agent", supertypes=["NamedElement"],
                references={"inputs": ("InputPort", "many", "containment")})
    mm = b.build()   # resolves and validates cross-references
"""

from __future__ import annotations

from typing import Optional

from repro.errors import MetamodelError
from repro.kernel.metamodel import (
    MetaAttribute,
    MetaClass,
    MetaModel,
    MetaReference,
)

#: Flags understood in attribute/reference shorthand tuples.
_FLAGS = {"many", "containment", "optional", "required"}


def _parse_attribute(name: str, spec: object) -> MetaAttribute:
    """Build a MetaAttribute from shorthand.

    Accepted forms: ``"int"`` — plain typed attribute;
    ``("int", "many")`` — flags after the type;
    ``("int", 0)`` — default value after the type;
    an explicit :class:`MetaAttribute` passes through.
    """
    if isinstance(spec, MetaAttribute):
        return spec
    if isinstance(spec, str):
        return MetaAttribute(name, spec)
    if isinstance(spec, tuple) and spec and isinstance(spec[0], str):
        type_name = spec[0]
        many = False
        optional = False
        default = None
        for extra in spec[1:]:
            if isinstance(extra, str) and extra in _FLAGS:
                many = many or extra == "many"
                optional = optional or extra == "optional"
            elif extra is None or isinstance(extra, (int, str, bool, float)):
                default = extra
            else:
                raise MetamodelError(
                    f"bad attribute shorthand for {name!r}: {spec!r}")
        return MetaAttribute(name, type_name, default=default, many=many,
                             optional=optional)
    raise MetamodelError(f"bad attribute shorthand for {name!r}: {spec!r}")


def _parse_reference(name: str, spec: object) -> MetaReference:
    """Build a MetaReference from shorthand.

    Accepted forms: ``"Target"``; ``("Target", "many")``;
    ``("Target", "many", "containment")``; ``("Target", "required")``;
    an explicit :class:`MetaReference` passes through.
    """
    if isinstance(spec, MetaReference):
        return spec
    if isinstance(spec, str):
        return MetaReference(name, spec)
    if isinstance(spec, tuple) and spec and isinstance(spec[0], str):
        target = spec[0]
        many = False
        containment = False
        optional = True
        for extra in spec[1:]:
            if extra not in _FLAGS:
                raise MetamodelError(
                    f"bad reference shorthand for {name!r}: {spec!r}")
            many = many or extra == "many"
            containment = containment or extra == "containment"
            if extra == "required":
                optional = False
        return MetaReference(name, target, many=many, containment=containment,
                             optional=optional)
    raise MetamodelError(f"bad reference shorthand for {name!r}: {spec!r}")


class MetamodelBuilder:
    """Accumulates metaclass declarations, then resolves them in one go."""

    def __init__(self, name: str):
        self._metamodel = MetaModel(name)

    def metaclass(self, name: str,
                  attributes: Optional[dict[str, object]] = None,
                  references: Optional[dict[str, object]] = None,
                  supertypes: Optional[list[str]] = None,
                  abstract: bool = False) -> MetaClass:
        """Declare a metaclass from shorthand feature specs (see module doc)."""
        cls = MetaClass(name, supertypes=supertypes, abstract=abstract)
        for attr_name, spec in (attributes or {}).items():
            cls.add_attribute(_parse_attribute(attr_name, spec))
        for ref_name, spec in (references or {}).items():
            cls.add_reference(_parse_reference(ref_name, spec))
        return self._metamodel.add(cls)

    def build(self) -> MetaModel:
        """Resolve supertypes/targets and return the finished metamodel."""
        self._metamodel.resolve()
        return self._metamodel
