"""Metaclasses, attributes and references — the MOF-lite core.

A :class:`MetaModel` is a named set of :class:`MetaClass` definitions.
Each metaclass owns typed :class:`MetaAttribute` slots (primitive values)
and :class:`MetaReference` slots (links to other model elements), and may
inherit features from supertypes. This is the minimal fragment of
MOF/Ecore the paper's pipeline relies on: enough to define the abstract
syntax of a DSL (Fig. 2 of the paper is itself such a metamodel) and to
navigate models from ECL mappings.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import MetamodelError
from repro.kernel.names import check_identifier

#: Primitive attribute types supported by the kernel, mapped to the Python
#: types a conforming value must have. ``bool`` is checked before ``int``
#: because Python's bool is an int subclass.
PRIMITIVE_TYPES: dict[str, type] = {
    "str": str,
    "int": int,
    "bool": bool,
    "float": float,
}


def _check_primitive(type_name: str, value: object) -> bool:
    """Return True when *value* is acceptable for primitive *type_name*."""
    expected = PRIMITIVE_TYPES[type_name]
    if expected is int and isinstance(value, bool):
        return False
    if expected is float and isinstance(value, int) and not isinstance(value, bool):
        return True  # int widens to float
    return isinstance(value, expected)


class MetaAttribute:
    """A primitive-typed feature of a metaclass.

    Parameters
    ----------
    name:
        Feature name, a simple identifier.
    type_name:
        One of :data:`PRIMITIVE_TYPES`.
    default:
        Value used when an instance is created without this attribute.
        ``None`` means "unset" (allowed only if *optional*).
    many:
        When True the slot holds an ordered list of values.
    optional:
        When True the slot may be left unset.
    """

    kind = "attribute"

    def __init__(self, name: str, type_name: str, default: object = None,
                 many: bool = False, optional: bool = False):
        self.name = check_identifier(name, "attribute name")
        if type_name not in PRIMITIVE_TYPES:
            raise MetamodelError(
                f"unknown attribute type {type_name!r} for {name!r}; "
                f"expected one of {sorted(PRIMITIVE_TYPES)}")
        self.type_name = type_name
        self.many = bool(many)
        self.optional = bool(optional)
        if default is not None and not many:
            if not _check_primitive(type_name, default):
                raise MetamodelError(
                    f"default {default!r} is not a valid {type_name} "
                    f"for attribute {name!r}")
        self.default = default

    def accepts(self, value: object) -> bool:
        """Return True when *value* conforms to this attribute's type."""
        return _check_primitive(self.type_name, value)

    def __repr__(self) -> str:
        many = "[*]" if self.many else ""
        return f"MetaAttribute({self.name}: {self.type_name}{many})"


class MetaReference:
    """A link feature of a metaclass, targeting another metaclass.

    ``containment`` references own their targets (a model element has at
    most one container); plain references are cross-links.
    """

    kind = "reference"

    def __init__(self, name: str, target: str, many: bool = False,
                 containment: bool = False, optional: bool = True):
        self.name = check_identifier(name, "reference name")
        self.target = check_identifier(target, "reference target")
        self.many = bool(many)
        self.containment = bool(containment)
        self.optional = bool(optional)

    def __repr__(self) -> str:
        many = "[*]" if self.many else ""
        kind = " (containment)" if self.containment else ""
        return f"MetaReference({self.name}: {self.target}{many}{kind})"


class MetaClass:
    """A metaclass: named features plus inheritance.

    Instances are created through :meth:`MetaModel.instantiate` so that the
    metaclass is always attached to a resolved metamodel.
    """

    def __init__(self, name: str, attributes: Optional[list[MetaAttribute]] = None,
                 references: Optional[list[MetaReference]] = None,
                 supertypes: Optional[list[str]] = None, abstract: bool = False):
        self.name = check_identifier(name, "metaclass name")
        self.attributes: dict[str, MetaAttribute] = {}
        self.references: dict[str, MetaReference] = {}
        self.supertypes: list[str] = list(supertypes or [])
        self.abstract = bool(abstract)
        self.metamodel: Optional["MetaModel"] = None
        self._cache_version = -1
        self._cache: dict[str, object] = {}
        for attr in attributes or []:
            self.add_attribute(attr)
        for ref in references or []:
            self.add_reference(ref)

    # -- construction -------------------------------------------------------

    def add_attribute(self, attribute: MetaAttribute) -> MetaAttribute:
        """Attach *attribute*; feature names must be unique within the class."""
        self._check_fresh(attribute.name)
        self.attributes[attribute.name] = attribute
        return attribute

    def add_reference(self, reference: MetaReference) -> MetaReference:
        """Attach *reference*; feature names must be unique within the class."""
        self._check_fresh(reference.name)
        self.references[reference.name] = reference
        return reference

    def _check_fresh(self, feature_name: str) -> None:
        if feature_name in self.attributes or feature_name in self.references:
            raise MetamodelError(
                f"duplicate feature {feature_name!r} in metaclass {self.name!r}")
        if self.metamodel is not None:
            self.metamodel._version += 1

    # -- resolved queries (require an owning metamodel) ----------------------

    def _require_metamodel(self) -> "MetaModel":
        if self.metamodel is None:
            raise MetamodelError(
                f"metaclass {self.name!r} is not attached to a metamodel")
        return self.metamodel

    def _resolved(self, key: str, compute):
        """Memoize a resolved query until the owning metamodel mutates
        (version bumped by class/feature additions). Cached values are
        shared — callers must treat them as read-only."""
        mm = self._require_metamodel()
        if self._cache_version != mm._version:
            self._cache = {}
            self._cache_version = mm._version
        if key not in self._cache:
            self._cache[key] = compute()
        return self._cache[key]

    def all_supertypes(self) -> list["MetaClass"]:
        """All transitive supertypes, nearest first, without duplicates."""
        return self._resolved("supertypes", self._all_supertypes)

    def _all_supertypes(self) -> list["MetaClass"]:
        mm = self._require_metamodel()
        seen: dict[str, MetaClass] = {}
        stack = list(self.supertypes)
        while stack:
            name = stack.pop(0)
            if name in seen:
                continue
            super_class = mm.metaclass(name)
            seen[name] = super_class
            stack.extend(super_class.supertypes)
        return list(seen.values())

    def conforms_to(self, other: "MetaClass | str") -> bool:
        """True when this class is *other* or a (transitive) subtype of it."""
        other_name = other if isinstance(other, str) else other.name
        if self.name == other_name:
            return True
        return any(sup.name == other_name for sup in self.all_supertypes())

    def all_attributes(self) -> dict[str, MetaAttribute]:
        """Own plus inherited attributes (own definitions win).

        The returned dict is cached and shared; treat it as read-only.
        """
        return self._resolved("attributes", self._all_attributes)

    def _all_attributes(self) -> dict[str, MetaAttribute]:
        merged: dict[str, MetaAttribute] = {}
        for sup in reversed(self.all_supertypes()):
            merged.update(sup.attributes)
        merged.update(self.attributes)
        return merged

    def all_references(self) -> dict[str, MetaReference]:
        """Own plus inherited references (own definitions win).

        The returned dict is cached and shared; treat it as read-only.
        """
        return self._resolved("references", self._all_references)

    def _all_references(self) -> dict[str, MetaReference]:
        merged: dict[str, MetaReference] = {}
        for sup in reversed(self.all_supertypes()):
            merged.update(sup.references)
        merged.update(self.references)
        return merged

    def feature(self, name: str) -> MetaAttribute | MetaReference | None:
        """Look up an attribute or reference (including inherited), or None."""
        attrs = self.all_attributes()
        if name in attrs:
            return attrs[name]
        refs = self.all_references()
        return refs.get(name)

    def __repr__(self) -> str:
        return f"MetaClass({self.name})"


class MetaModel:
    """A named collection of metaclasses forming a DSL abstract syntax."""

    def __init__(self, name: str):
        self.name = check_identifier(name, "metamodel name")
        self._classes: dict[str, MetaClass] = {}
        #: bumped on every structural mutation; invalidates the
        #: per-metaclass resolved-query caches
        self._version = 0

    def add(self, metaclass: MetaClass) -> MetaClass:
        """Register *metaclass* under its name; names must be unique."""
        if metaclass.name in self._classes:
            raise MetamodelError(
                f"duplicate metaclass {metaclass.name!r} in {self.name!r}")
        metaclass.metamodel = self
        self._classes[metaclass.name] = metaclass
        self._version += 1
        return metaclass

    def metaclass(self, name: str) -> MetaClass:
        """Return the metaclass named *name*; raise if unknown."""
        try:
            return self._classes[name]
        except KeyError:
            raise MetamodelError(
                f"unknown metaclass {name!r} in metamodel {self.name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._classes

    def __iter__(self) -> Iterator[MetaClass]:
        return iter(self._classes.values())

    def classes(self) -> list[MetaClass]:
        """All metaclasses in registration order."""
        return list(self._classes.values())

    def resolve(self) -> None:
        """Check cross-references: supertypes and reference targets exist,
        inheritance is acyclic. Call once after all classes are added."""
        for cls in self:
            for sup in cls.supertypes:
                if sup not in self._classes:
                    raise MetamodelError(
                        f"metaclass {cls.name!r} extends unknown {sup!r}")
            for ref in cls.references.values():
                if ref.target not in self._classes:
                    raise MetamodelError(
                        f"reference {cls.name}.{ref.name} targets unknown "
                        f"metaclass {ref.target!r}")
        for cls in self:
            self._check_acyclic(cls)

    def _check_acyclic(self, cls: MetaClass) -> None:
        seen: set[str] = set()
        stack = list(cls.supertypes)
        while stack:
            name = stack.pop()
            if name == cls.name:
                raise MetamodelError(
                    f"inheritance cycle through metaclass {cls.name!r}")
            if name in seen:
                continue
            seen.add(name)
            stack.extend(self.metaclass(name).supertypes)

    def instantiate(self, class_name: str, **values: object):
        """Create a fresh :class:`~repro.kernel.mobject.MObject` of
        *class_name*, initialising slots from keyword arguments."""
        from repro.kernel.mobject import MObject

        cls = self.metaclass(class_name)
        if cls.abstract:
            raise MetamodelError(
                f"cannot instantiate abstract metaclass {class_name!r}")
        obj = MObject(cls)
        for key, value in values.items():
            obj.set(key, value)
        return obj

    def __repr__(self) -> str:
        return f"MetaModel({self.name}, {len(self._classes)} classes)"
