"""Model containers: a set of root elements conforming to one metamodel."""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from repro.errors import ConformanceError
from repro.kernel.metamodel import MetaModel
from repro.kernel.mobject import MObject


class Model:
    """A model: root elements plus everything they transitively contain.

    This mirrors an EMF *resource*. Lookup helpers cover the queries the
    rest of the pipeline needs: all instances of a metaclass (the ECL
    weaver iterates contexts this way) and lookup by name.
    """

    def __init__(self, metamodel: MetaModel, name: str = "model"):
        self.metamodel = metamodel
        self.name = name
        self._roots: list[MObject] = []

    # -- construction ---------------------------------------------------------

    def add_root(self, element: MObject) -> MObject:
        """Add a root element; it must conform to this model's metamodel."""
        if element.meta.metamodel is not self.metamodel:
            raise ConformanceError(
                f"{element.label()} belongs to metamodel "
                f"{element.meta.metamodel.name if element.meta.metamodel else '?'!r}, "
                f"not {self.metamodel.name!r}")
        self._roots.append(element)
        return element

    def create(self, class_name: str, **values: object) -> MObject:
        """Instantiate *class_name* and register it as a root element."""
        element = self.metamodel.instantiate(class_name, **values)
        return self.add_root(element)

    # -- traversal --------------------------------------------------------------

    @property
    def roots(self) -> list[MObject]:
        return list(self._roots)

    def __iter__(self) -> Iterator[MObject]:
        """Iterate every element: roots and transitive contents."""
        for root in self._roots:
            yield root
            yield from root.all_contents()

    def all_instances(self, class_name: str,
                      include_subtypes: bool = True) -> list[MObject]:
        """All elements whose metaclass is (or conforms to) *class_name*."""
        result = []
        for element in self:
            if include_subtypes:
                if element.meta.conforms_to(class_name):
                    result.append(element)
            elif element.meta.name == class_name:
                result.append(element)
        return result

    def find(self, class_name: str, name: str) -> Optional[MObject]:
        """First instance of *class_name* whose ``name`` attribute matches."""
        for element in self.all_instances(class_name):
            if element.name == name:
                return element
        return None

    def select(self, predicate: Callable[[MObject], bool]) -> list[MObject]:
        """All elements satisfying *predicate*."""
        return [element for element in self if predicate(element)]

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def copy(self, name: str | None = None) -> "Model":
        """A structural deep copy: fresh elements, same metamodel.

        Containment and cross-references are rebuilt between the copies;
        attribute values are shared (they are immutable primitives).
        """
        twins: dict[int, MObject] = {}
        originals = list(self)
        for element in originals:
            twins[id(element)] = self.metamodel.instantiate(
                element.meta.name)
        for element in originals:
            twin = twins[id(element)]
            for attr in element.meta.all_attributes().values():
                if element.is_set(attr.name):
                    twin.set(attr.name, element.get(attr.name))
            for ref in element.meta.all_references().values():
                value = element.get(ref.name)
                if ref.many:
                    twin.set(ref.name,
                             [twins[id(target)] for target in value])
                elif value is not None:
                    twin.set(ref.name, twins[id(value)])
        duplicate = Model(self.metamodel, name or self.name)
        for root in self._roots:
            duplicate.add_root(twins[id(root)])
        return duplicate

    def __repr__(self) -> str:
        return f"Model({self.name!r}, {len(self._roots)} roots)"
