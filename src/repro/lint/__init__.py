"""``repro.lint`` — static analysis of concurrency models.

The paper's pitch is that an explicit concurrency metalanguage lets
tools reason about models *before* executing them; this package is
that tooling layer. Rules run on loaded
:class:`~repro.workbench.frontends.ModelHandle` objects without
stepping the engine, and every ERROR-severity claim is
*engine-confirmable*: :mod:`repro.lint.crosscheck` replays it against
the dynamic semantics (the engine is the oracle that keeps the
analyzer honest).

Rule catalog
============

=========  =======  ====================================================
ID         Severity  Meaning — and how the engine confirms it
=========  =======  ====================================================
``SDF001``  ERROR    Rate-inconsistent dataflow component (balance
                     equations only admit the zero vector) — ``EF
                     deadlock`` HOLDS on the projected component.
``SDF002``  ERROR    Consistent graph admitting no periodic schedule
                     (class-S construction fails with unbounded
                     buffers) — ``EF deadlock`` HOLDS on the projected
                     component.
``SDF003``  ERROR    Statically-dead actor (an input place can never
                     accumulate its pop rate) — ``AG
                     !occurs(<agent>.start)`` HOLDS untruncated.
``SDF004``  INFO     Repetition vector of a schedulable component — an
                     ASAP run settles into a cycle firing an exact
                     integer multiple of the vector.
``SDF005``  WARN     Periodic schedule exists with unbounded buffers
                     but not within declared capacities — no dynamic
                     claim (the bounded greedy construction is
                     incomplete under concurrent firing).
``CCS001``  ERROR    Event forbidden by the conjunction of the
                     stateless relational constraints — ``AG
                     !occurs(<event>)`` HOLDS.
``CCS002``  ERROR    Strict precedence cycle (an SCC none of whose
                     events can fire first) — ``AG !occurs(<event>)``
                     HOLDS for every event on the cycle.
``CCS003``  WARN     Event bound to no constraint (free-running clock)
                     — legal, no dynamic claim.
``CCS004``  ERROR    Contradictory bounded-relation parameters (delay
                     deeper than the precedence bound, clashing
                     periodic filters, all-zero filter word) — ``AG
                     !occurs(<event>)`` HOLDS for the strangled event.
``MOC001``  WARN     Automaton state unreachable under *any*
                     environment (exact bounded local walk).
``MOC002``  WARN     Overlapping transition guards — nondeterminism
                     resolved by declaration order; may be masked by
                     other constraints globally.
``DEP001``  ERROR    Agent with no processor allocation — ``deploy()``
                     refuses the model (DeploymentError).
``DEP002``  ERROR    Allocation naming an unknown agent or processor —
                     ``deploy()`` refuses the model.
``DEP003``  WARN     Processor hosting several agents (mutex
                     serialization).
``DEP004``  INFO     Cross-processor place subject to communication
                     latency.
``KER001``  ERROR    Required attribute or reference unset —
                     ``assert_conformance`` raises.
``KER002``  ERROR    Instance of an abstract metaclass — same.
``KER003``  ERROR    Cross-reference outside the model closure — same.
``KER004``  ERROR    Containment cycle — same.
``ENC001``  WARN     Model not finitely encodable — compiling raises
                     ``SymbolicEncodingError`` iff this fires (the
                     :mod:`repro.engine.encodability` predictor;
                     checked corpus-wide by the cross-check harness).
=========  =======  ====================================================
"""

from repro.lint.core import (
    Diagnostic,
    LintError,
    LintReport,
    RULES,
    register_rule,
    lint_handle,
    rule_catalog,
)
from repro.lint.crosscheck import crosscheck_corpus, crosscheck_handle
from repro.lint.sarif import sarif_doc

__all__ = [
    "Diagnostic",
    "LintError",
    "LintReport",
    "RULES",
    "register_rule",
    "lint_handle",
    "rule_catalog",
    "crosscheck_handle",
    "crosscheck_corpus",
    "sarif_doc",
]
