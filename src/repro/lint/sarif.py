"""SARIF 2.1.0 rendering of lint reports (CI upload format).

Models are not files, so findings carry *logical* locations (the
diagnostic's element path) rather than physical ones — consumers like
the GitHub code-scanning UI render them by fully qualified name.
"""

from __future__ import annotations

from repro.lint.core import LintReport, rule_catalog

_SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
_LEVELS = {"error": "error", "warning": "warning", "info": "note"}


def sarif_doc(reports: list[LintReport] | LintReport) -> dict:
    """One SARIF run covering *reports* (a single report is wrapped)."""
    if isinstance(reports, LintReport):
        reports = [reports]
    used = {d.rule for report in reports for d in report.diagnostics}
    rules = [
        {
            "id": entry["rule"],
            "shortDescription": {"text": entry["summary"]},
            "defaultConfiguration": {
                "level": _LEVELS[entry["severity"]]},
            "properties": {"confirm": entry["confirm"]},
        }
        for entry in rule_catalog() if entry["rule"] in used
    ]
    results = [
        {
            "ruleId": diagnostic.rule,
            "level": _LEVELS[diagnostic.severity],
            "message": {"text": diagnostic.message},
            "locations": [{
                "logicalLocations": [{
                    "fullyQualifiedName": diagnostic.path,
                }],
            }],
            "properties": {"model": report.model,
                           "frontend": report.frontend},
        }
        for report in reports for diagnostic in report.diagnostics
    ]
    return {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "repro-lint",
                "informationUri":
                    "https://github.com/paper-repo-growth/repro",
                "rules": rules,
            }},
            "results": results,
        }],
    }
