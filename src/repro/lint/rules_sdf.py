"""SigPML/SDF rules: balance equations, schedulability, dead actors.

All graph reasoning runs on the flattened
:func:`~repro.sdf.analysis.place_infos` view, per *connected
component* — the dynamic claims (deadlock, dead actors) are
component-local, and the cross-check harness replays them on the
projected component model when the graph is disconnected.
"""

from __future__ import annotations

import math
from fractions import Fraction

from repro.lint.core import Diagnostic, register_rule
from repro.sdf.analysis import PlaceInfo, agent_names, place_infos


def graph_components(app) -> list[dict]:
    """Undirected connected components of the dataflow graph: a list of
    ``{"agents": [...], "places": [PlaceInfo, ...]}`` dicts (stable
    order: by first agent)."""
    agents = agent_names(app)
    places = place_infos(app)
    neighbours: dict[str, set[str]] = {name: set() for name in agents}
    for place in places:
        neighbours[place.producer].add(place.consumer)
        neighbours[place.consumer].add(place.producer)
    seen: set[str] = set()
    components = []
    for seed in agents:
        if seed in seen:
            continue
        member_set = {seed}
        queue = [seed]
        while queue:
            current = queue.pop(0)
            for neighbour in neighbours[current]:
                if neighbour not in member_set:
                    member_set.add(neighbour)
                    queue.append(neighbour)
        seen |= member_set
        members = [name for name in agents if name in member_set]
        components.append({
            "agents": members,
            "places": [place for place in places
                       if place.producer in member_set],
        })
    return components


def component_rates(component: dict) -> dict[str, int] | None:
    """The component's repetition vector, or ``None`` when the balance
    equations are rate-inconsistent."""
    rates: dict[str, Fraction] = {component["agents"][0]: Fraction(1)}
    queue = list(rates)
    places = component["places"]
    while queue:
        current = queue.pop(0)
        for place in places:
            if current not in (place.producer, place.consumer):
                continue
            if place.producer == place.consumer:
                if place.push != place.pop:
                    return None
                continue
            if place.producer in rates and place.consumer in rates:
                if rates[place.producer] * place.push \
                        != rates[place.consumer] * place.pop:
                    return None
            elif place.producer in rates:
                rates[place.consumer] = (
                    rates[place.producer] * place.push / place.pop)
                queue.append(place.consumer)
            elif place.consumer in rates:
                rates[place.producer] = (
                    rates[place.consumer] * place.pop / place.push)
                queue.append(place.producer)
    lcm = math.lcm(*(rate.denominator for rate in rates.values()))
    scaled = {name: int(rate * lcm) for name, rate in rates.items()}
    gcd = math.gcd(*scaled.values())
    return {name: value // gcd for name, value in scaled.items()}


def greedy_pass(component: dict, repetitions: dict[str, int],
                bounded: bool) -> list[str] | None:
    """Lee & Messerschmitt's class-S construction on one component;
    ``None`` on deadlock. With *bounded*, writes respect capacities."""
    places = component["places"]
    tokens = {id(place): place.delay for place in places}
    remaining = dict(repetitions)
    schedule: list[str] = []
    total = sum(remaining.values())
    by_consumer: dict[str, list[PlaceInfo]] = {}
    by_producer: dict[str, list[PlaceInfo]] = {}
    for place in places:
        by_consumer.setdefault(place.consumer, []).append(place)
        by_producer.setdefault(place.producer, []).append(place)

    def runnable(agent: str) -> bool:
        for place in by_consumer.get(agent, []):
            if tokens[id(place)] < place.pop:
                return False
        if bounded:
            for place in by_producer.get(agent, []):
                projected = tokens[id(place)] + place.push
                if place.producer == place.consumer:
                    projected -= place.pop
                if projected > place.capacity:
                    return False
        return True

    while len(schedule) < total:
        fired = False
        for agent in component["agents"]:
            if remaining[agent] > 0 and runnable(agent):
                for place in by_consumer.get(agent, []):
                    tokens[id(place)] -= place.pop
                for place in by_producer.get(agent, []):
                    tokens[id(place)] += place.push
                remaining[agent] -= 1
                schedule.append(agent)
                fired = True
                break
        if not fired:
            return None
    return schedule


def component_doc(handle, members: list[str]) -> dict:
    """A standalone SigPML model document of one component — the
    cross-check harness confirms component-local claims on it.

    Sound because components share no places: the full model's step
    space is the product of its components', so a component's behavior
    in isolation equals its behavior inside the full model.
    """
    app = handle.application
    cycles = {agent.name: agent.get("cycles")
              for agent in app.get("agents")}
    member_set = set(members)
    lines = [f"application {app.name}_component {{"]
    for name in members:
        suffix = f" cycles {cycles[name]}" if cycles.get(name) else ""
        lines.append(f"  agent {name}{suffix}")
    for place in place_infos(app):
        if place.producer not in member_set:
            continue
        line = (f"  place {place.producer} -> {place.consumer} "
                f"push {place.push} pop {place.pop} "
                f"capacity {place.capacity}")
        if place.delay:
            line += f" delay {place.delay}"
        lines.append(line)
    lines.append("}")
    return {"frontend": "sigpml", "text": "\n".join(lines) + "\n"}


def _deadlock_confirm(members: list[str], whole: bool) -> dict:
    confirm = {"kind": "deadlock", "agents": list(members)}
    if not whole:
        confirm["project"] = True
    return confirm


@register_rule(
    "SDF001", severity="error", requires="application",
    summary="rate-inconsistent dataflow graph (balance equations only "
            "admit the zero vector)",
    confirm="every execution of the component is finite, so `EF "
            "deadlock` HOLDS on the (projected) component")
def rule_inconsistent_graph(handle):
    app = handle.application
    components = graph_components(app)
    n_agents = len(agent_names(app))
    for component in components:
        if len(component["agents"]) == 1 and not component["places"]:
            continue
        if component_rates(component) is not None:
            continue
        members = component["agents"]
        yield Diagnostic(
            rule="SDF001", severity="error",
            path=f"{app.name}.{{{', '.join(members)}}}",
            message=f"rate-inconsistent component "
                    f"{{{', '.join(members)}}}: the balance equations "
                    f"have no positive repetition vector, so with "
                    f"bounded buffers every schedule eventually "
                    f"deadlocks",
            data={"agents": members,
                  "confirm": _deadlock_confirm(
                      members, len(members) == n_agents)})


@register_rule(
    "SDF002", severity="error", requires="application",
    summary="consistent graph admitting no periodic schedule (class-S "
            "construction fails even with unbounded buffers)",
    confirm="the class-S theorem makes every schedule deadlock: `EF "
            "deadlock` HOLDS on the (projected) component")
def rule_no_pass(handle):
    app = handle.application
    n_agents = len(agent_names(app))
    for component in graph_components(app):
        rates = component_rates(component)
        if rates is None:  # SDF001 territory
            continue
        if greedy_pass(component, rates, bounded=False) is not None:
            continue
        members = component["agents"]
        yield Diagnostic(
            rule="SDF002", severity="error",
            path=f"{app.name}.{{{', '.join(members)}}}",
            message=f"component {{{', '.join(members)}}} admits no "
                    f"periodic admissible schedule: by the class-S "
                    f"theorem every schedule of it deadlocks",
            data={"agents": members, "repetition": rates,
                  "confirm": _deadlock_confirm(
                      members, len(members) == n_agents)})


@register_rule(
    "SDF003", severity="error", requires="application",
    summary="statically-dead actor: some input place can never "
            "accumulate its pop rate",
    confirm="`AG !occurs(<agent>.start)` HOLDS on the untruncated "
            "space")
def rule_dead_actor(handle):
    """Least-fixpoint may-fire analysis: an agent *may* fire when every
    input place either starts with ``delay >= pop`` tokens or is fed by
    a producer that may itself fire. The complement of this
    over-approximation (capacities and repeat-feasibility are ignored,
    which only *adds* may-fire agents) is definitely dead."""
    app = handle.application
    agents = agent_names(app)
    inputs: dict[str, list[PlaceInfo]] = {name: [] for name in agents}
    for place in place_infos(app):
        if place.producer != place.consumer:
            inputs[place.consumer].append(place)
        elif place.delay < place.pop:
            # a self-loop below its pop rate never fires its agent
            inputs[place.consumer].append(place)
    may_fire: set[str] = set()
    changed = True
    while changed:
        changed = False
        for agent in agents:
            if agent in may_fire:
                continue
            if all(place.delay >= place.pop
                   or (place.producer != place.consumer
                       and place.producer in may_fire)
                   for place in inputs[agent]):
                may_fire.add(agent)
                changed = True
    for agent in agents:
        if agent in may_fire:
            continue
        starving = [place.name for place in inputs[agent]
                    if place.delay < place.pop
                    and place.producer not in may_fire]
        yield Diagnostic(
            rule="SDF003", severity="error",
            path=f"{app.name}.{agent}",
            message=f"agent {agent!r} can never fire: input place(s) "
                    f"{', '.join(starving)} can never accumulate "
                    f"their pop rate",
            data={"agent": agent, "places": starving,
                  "confirm": {"kind": "dead-event",
                              "event": f"{agent}.start"}})


@register_rule(
    "SDF004", severity="info", requires="application",
    summary="repetition vector of a consistent, schedulable graph",
    confirm="an ASAP run settles into a cycle whose per-agent firing "
            "counts are an exact integer multiple of the vector")
def rule_repetition_vector(handle):
    app = handle.application
    for component in graph_components(app):
        rates = component_rates(component)
        if rates is None:
            continue
        if greedy_pass(component, rates, bounded=True) is None:
            continue
        members = component["agents"]
        vector = {name: rates[name] for name in members}
        yield Diagnostic(
            rule="SDF004", severity="info",
            path=f"{app.name}.{{{', '.join(members)}}}",
            message=f"repetition vector: "
                    + ", ".join(f"{name}={vector[name]}"
                                for name in members),
            data={"agents": members, "repetition": vector,
                  "confirm": {"kind": "repetition",
                              "agents": members,
                              "repetition": vector}})


@register_rule(
    "SDF005", severity="warning", requires="application",
    summary="under-capacity buffering: a periodic schedule exists with "
            "unbounded buffers but the capacity-aware construction "
            "fails",
    confirm="none (the greedy bounded construction is incomplete "
            "under concurrent firing, so this stays a warning)")
def rule_under_capacity(handle):
    app = handle.application
    for component in graph_components(app):
        rates = component_rates(component)
        if rates is None:
            continue
        if greedy_pass(component, rates, bounded=False) is None:
            continue  # SDF002 territory
        if greedy_pass(component, rates, bounded=True) is not None:
            continue
        members = component["agents"]
        yield Diagnostic(
            rule="SDF005", severity="warning",
            path=f"{app.name}.{{{', '.join(members)}}}",
            message=f"component {{{', '.join(members)}}} schedules "
                    f"with unbounded buffers but not within the "
                    f"declared capacities — likely under-provisioned "
                    f"places (artificial deadlock risk)",
            data={"agents": members, "repetition": rates})
