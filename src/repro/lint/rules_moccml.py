"""MoCCML rules: unreachable automaton states, overlapping guards.

Both rules run an *exact bounded local walk* per
:class:`~repro.moccml.semantics.automata_rt.AutomatonRuntime` instance:
a BFS over ``(state, variables)`` configurations via
``snapshot``/``restore`` on a clone, presenting every subset of the
instance's (small) local alphabet as a candidate step. The walk
over-approximates what the instance sees inside the full model (global
constraints can only *remove* steps), so states it never reaches are
truly unreachable — but a reported guard overlap might not be
triggerable globally, which is why both rules stay WARN severity.
"""

from __future__ import annotations

from repro.lint.core import Diagnostic, register_rule
from repro.moccml.semantics.automata_rt import AutomatonRuntime
from repro.moccml.semantics.runtime import CompositeRuntime

#: local walks beyond these sizes are skipped (ENC001 covers runaway
#: counters; 2**_MAX_LOCAL_ALPHABET step subsets are tried per config)
_MAX_LOCAL_ALPHABET = 8
_MAX_CONFIGS = 2048


def automaton_instances(model) -> list[AutomatonRuntime]:
    instances = []
    queue = list(model.constraints)
    while queue:
        runtime = queue.pop(0)
        if isinstance(runtime, CompositeRuntime):
            queue.extend(runtime.children)
        elif isinstance(runtime, AutomatonRuntime):
            instances.append(runtime)
    return instances


def local_walk(runtime: AutomatonRuntime) -> dict | None:
    """Exact reachability of one instance under arbitrary environment
    steps; ``None`` when the instance is too big to walk exhaustively.

    Returns ``{"states": reachable state names, "overlaps": {state:
    [(step, [transition descriptions])]}}``.
    """
    alphabet = sorted(runtime.constrained_events)
    if len(alphabet) > _MAX_LOCAL_ALPHABET:
        return None
    steps = []
    for mask in range(1, 2 ** len(alphabet)):
        steps.append(frozenset(
            event for index, event in enumerate(alphabet)
            if mask >> index & 1))

    probe = runtime.clone()
    initial = probe.snapshot()
    seen = {initial}
    queue = [initial]
    states: set[str] = set()
    overlaps: dict[str, dict] = {}
    while queue:
        config = queue.pop(0)
        for step in steps:
            probe.restore(config)
            enabled = probe.enabled_transitions(step)
            if not enabled:
                continue
            if len(enabled) > 1:
                record = overlaps.setdefault(probe.current_state, {})
                key = tuple(f"{t.source}->{t.target}" for t in enabled)
                record.setdefault(key, sorted(step))
            probe.advance(step)
            successor = probe.snapshot()
            if successor not in seen:
                if len(seen) >= _MAX_CONFIGS:
                    return None
                seen.add(successor)
                queue.append(successor)
    for config in seen:
        probe.restore(config)
        states.add(probe.current_state)
    return {
        "states": states,
        "overlaps": {
            state: [(step, list(key)) for key, step in record.items()]
            for state, record in overlaps.items()
        },
    }


@register_rule(
    "MOC001", severity="warning", requires="execution_model",
    summary="automaton state unreachable under any environment",
    confirm="none (the local walk over-approximates the environment, "
            "so unreachability is already exact; WARN because dead "
            "specification states are legal)")
def rule_unreachable_states(handle):
    model = handle.execution_model
    for runtime in automaton_instances(model):
        walk = local_walk(runtime)
        if walk is None:
            continue
        unreachable = [name for name in runtime.definition.state_names()
                       if name not in walk["states"]]
        if not unreachable:
            continue
        yield Diagnostic(
            rule="MOC001", severity="warning",
            path=f"{model.name}.{runtime.label}",
            message=f"automaton {runtime.label!r}: state(s) "
                    f"{', '.join(unreachable)} are unreachable under "
                    f"any environment",
            data={"constraint": runtime.label, "states": unreachable})


@register_rule(
    "MOC002", severity="warning", requires="execution_model",
    summary="overlapping transition guards (nondeterministic choice "
            "resolved by declaration order)",
    confirm="none (the overlap is exact locally but may be masked by "
            "other constraints in the full model)")
def rule_overlapping_guards(handle):
    model = handle.execution_model
    for runtime in automaton_instances(model):
        walk = local_walk(runtime)
        if walk is None:
            continue
        for state in sorted(walk["overlaps"]):
            for step, transitions in walk["overlaps"][state]:
                yield Diagnostic(
                    rule="MOC002", severity="warning",
                    path=f"{model.name}.{runtime.label}",
                    message=f"automaton {runtime.label!r}: in state "
                            f"{state!r} the step {{{', '.join(step)}}} "
                            f"enables {len(transitions)} transitions "
                            f"({', '.join(transitions)}); the first "
                            f"declared wins",
                    data={"constraint": runtime.label, "state": state,
                          "step": list(step),
                          "transitions": list(transitions)})
