"""Diagnostics core: :class:`Diagnostic`, the rule registry, reports.

A *rule* is a function from a loaded
:class:`~repro.workbench.frontends.ModelHandle` to diagnostics; it
must never step the engine (no simulation, exploration or BDD
compilation — the whole point is admission-time cost). Rules register
through :func:`register_rule` with a stable ID, a severity and the
handle artifact they need (``application``, ``execution_model``,
``deployment``, ``source_model``), mirroring how front-ends register
in :mod:`repro.workbench.frontends`; :func:`lint_handle` dispatches
every applicable rule and returns a deterministic
:class:`LintReport`.

Severities carry a contract, not just a color:

``error``
    the model is defective and the claim is *engine-confirmable* —
    :mod:`repro.lint.crosscheck` replays every ERROR against the
    dynamic semantics (a predicted-dead event must satisfy
    ``AG !occurs(e)`` on the untruncated space, a predicted deadlock
    must satisfy ``EF deadlock``, …);
``warning``
    suspicious but not provably wrong statically;
``info``
    a derived fact worth surfacing (e.g. the repetition vector).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError

SEVERITIES = ("error", "warning", "info")


class LintError(ReproError):
    """A lint request the analyzer cannot honor."""


@dataclass(frozen=True)
class Diagnostic:
    """One finding: stable rule ID, severity, element path, human
    message, machine payload.

    ``data`` may carry a ``confirm`` descriptor — the dynamic claim
    :mod:`repro.lint.crosscheck` replays against the engine (e.g.
    ``{"kind": "dead-event", "event": "a"}``).
    """

    rule: str
    severity: str
    path: str
    message: str
    data: dict = field(default_factory=dict, compare=False)

    def __post_init__(self):
        if self.severity not in SEVERITIES:
            raise LintError(
                f"unknown severity {self.severity!r}; expected one of "
                f"{', '.join(SEVERITIES)}")

    def to_doc(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "message": self.message,
            "data": self.data,
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "Diagnostic":
        return cls(rule=doc["rule"], severity=doc["severity"],
                   path=doc["path"], message=doc["message"],
                   data=doc.get("data") or {})


@dataclass(frozen=True)
class Rule:
    """A registered rule: metadata plus the analyzer function."""

    rule_id: str
    severity: str
    requires: str  # handle artifact: "application" | "execution_model" | ...
    summary: str
    confirm: str  # one-line dynamic-confirmation story
    frontends: tuple[str, ...] | None
    fn: object

    def applies_to(self, handle) -> bool:
        if getattr(handle, self.requires, None) is None:
            return False
        if (self.frontends is not None
                and getattr(handle, "frontend", None) not in self.frontends):
            return False
        return True


#: the rule registry, keyed by rule ID (sorted iteration = stable output)
RULES: dict[str, Rule] = {}


def register_rule(rule_id: str, severity: str, requires: str,
                  summary: str, confirm: str = "none",
                  frontends: tuple[str, ...] | None = None):
    """Class-method-style decorator registering one analyzer function.

    *requires* names the :class:`ModelHandle` attribute the rule reads
    (the rule is skipped on handles where it is ``None``); *frontends*
    optionally restricts to specific front-end names; *confirm* is the
    human-readable dynamic-confirmation story shown in the catalog.
    """
    if severity not in SEVERITIES:
        raise LintError(
            f"rule {rule_id}: unknown severity {severity!r}")

    def decorate(fn):
        if rule_id in RULES:
            raise LintError(f"duplicate rule ID {rule_id}")
        RULES[rule_id] = Rule(
            rule_id=rule_id, severity=severity, requires=requires,
            summary=summary, confirm=confirm,
            frontends=tuple(frontends) if frontends else None, fn=fn)
        return fn

    return decorate


def _ensure_rules_loaded() -> None:
    """Import the rule modules (registration is an import side effect,
    deferred to avoid import cycles with the front-end loaders)."""
    from repro.lint import (  # noqa: F401
        rules_ccsl,
        rules_deployment,
        rules_encoding,
        rules_kernel,
        rules_moccml,
        rules_sdf,
    )


@dataclass
class LintReport:
    """Every diagnostic of one model, with severity totals."""

    model: str
    frontend: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    rules_run: int = 0

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    @property
    def ok(self) -> bool:
        """Clean means *no errors* (warnings and infos may remain)."""
        return not self.errors

    def to_doc(self) -> dict:
        counts = dict.fromkeys(SEVERITIES, 0)
        for diagnostic in self.diagnostics:
            counts[diagnostic.severity] += 1
        return {
            "model": self.model,
            "frontend": self.frontend,
            "ok": self.ok,
            "rules_run": self.rules_run,
            "counts": counts,
            "diagnostics": [d.to_doc() for d in self.diagnostics],
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "LintReport":
        return cls(
            model=doc["model"], frontend=doc["frontend"],
            rules_run=doc.get("rules_run", 0),
            diagnostics=[Diagnostic.from_doc(d)
                         for d in doc.get("diagnostics", [])])


def lint_handle(handle, rules: tuple[str, ...] | None = None) -> LintReport:
    """Run every applicable registered rule on *handle*.

    *rules* optionally restricts to specific rule IDs. Output order is
    deterministic: rules by ID, diagnostics as each rule yields them,
    then a stable sort by (rule, path, message).
    """
    _ensure_rules_loaded()
    if rules is not None:
        unknown = sorted(set(rules) - set(RULES))
        if unknown:
            raise LintError(
                f"unknown lint rule(s): {', '.join(unknown)}")
    report = LintReport(
        model=getattr(handle, "name", "?"),
        frontend=getattr(handle, "frontend", "?"))
    for rule_id in sorted(RULES):
        if rules is not None and rule_id not in rules:
            continue
        rule = RULES[rule_id]
        if not rule.applies_to(handle):
            continue
        report.rules_run += 1
        for diagnostic in rule.fn(handle):
            if (diagnostic.rule != rule.rule_id
                    or diagnostic.severity != rule.severity):
                raise LintError(
                    f"rule {rule.rule_id} emitted a diagnostic labeled "
                    f"{diagnostic.rule}/{diagnostic.severity}; rule "
                    f"metadata and diagnostics must agree")
            report.diagnostics.append(diagnostic)
    report.diagnostics.sort(key=lambda d: (d.rule, d.path, d.message))
    return report


def rule_catalog() -> list[dict]:
    """The machine-readable rule catalog (CLI ``repro lint --rules``)."""
    _ensure_rules_loaded()
    return [
        {
            "rule": rule.rule_id,
            "severity": rule.severity,
            "requires": rule.requires,
            "frontends": list(rule.frontends) if rule.frontends else None,
            "summary": rule.summary,
            "confirm": rule.confirm,
        }
        for _rule_id, rule in sorted(RULES.items())
    ]
