"""Static↔dynamic cross-check: every lint claim replayed on the engine.

The analyzer is only trustworthy if its diagnostics survive contact
with the dynamic semantics, so — mirroring
:mod:`repro.engine.equivalence` for the symbolic backend — this module
replays every diagnostic carrying a ``confirm`` descriptor against the
engine and reports every divergence:

``deadlock``
    ``check "EF deadlock"`` must HOLD (untruncated) on the model, or
    on the projected component when the claim is component-local;
``dead-event``
    ``check "AG !occurs(<event>)"`` must HOLD untruncated;
``repetition``
    an ASAP (:meth:`max_step`) run must revisit a configuration, and
    the firing counts over the cycle must be an exact positive integer
    multiple of the claimed repetition vector;
``unencodable``
    compiling the model must raise :class:`SymbolicEncodingError`;
``conformance``
    :func:`assert_conformance` must reject the source model.

Independently of any diagnostics, :func:`crosscheck_handle` always
verifies the encodability predictor against the actual compile outcome
(:class:`SymbolicEncodingError` raised ⇔ predicted unencodable), so
the predictor is exercised on clean corpora too.
"""

from __future__ import annotations

from repro.engine.ctl import check
from repro.engine.encodability import predict
from repro.engine.symbolic import TransitionSystem
from repro.errors import ConformanceError, SymbolicEncodingError
from repro.kernel.validation import assert_conformance
from repro.lint.core import LintReport, lint_handle
from repro.lint.rules_sdf import component_doc

#: ASAP steps driven before giving up on a configuration revisit
_MAX_ASAP_STEPS = 10_000


def _check_holds(model, text: str) -> tuple[bool, str]:
    """Engine verdict for *text*, symbolic first (exact), explicit as
    the fallback for unencodable models."""
    try:
        result = check(model, text, strategy="symbolic")
    except SymbolicEncodingError:
        result = check(model, text, strategy="explicit")
    verdict = result.verdict.name
    if verdict == "UNKNOWN":
        return False, f"{text}: UNKNOWN (truncated at {result.states})"
    return verdict == "HOLDS", f"{text}: {verdict}"


def _confirm_model(handle, confirm: dict):
    """The execution model a claim replays on: the handle's own, or a
    freshly loaded component projection."""
    from repro.workbench.frontends import load, source_from_doc

    if not confirm.get("project"):
        return handle.execution_model.clone()
    doc = component_doc(handle, confirm["agents"])
    projected = load(source_from_doc(doc), name=f"{handle.name}-component")
    return projected.execution_model


def _confirm_deadlock(handle, confirm: dict) -> tuple[bool, str]:
    model = _confirm_model(handle, confirm)
    return _check_holds(model, "EF deadlock")


def _confirm_dead_event(handle, confirm: dict) -> tuple[bool, str]:
    model = handle.execution_model.clone()
    return _check_holds(model, f"AG !occurs({confirm['event']})")


def _confirm_repetition(handle, confirm: dict) -> tuple[bool, str]:
    model = _confirm_model(handle, confirm)
    agents = confirm["agents"]
    repetition = confirm["repetition"]
    seen = {model.configuration(): 0}
    steps: list[frozenset] = []
    for index in range(1, _MAX_ASAP_STEPS + 1):
        step = model.max_step()
        if step is None:
            return False, f"ASAP run deadlocked after {len(steps)} step(s)"
        model.advance(step)
        steps.append(step)
        configuration = model.configuration()
        if configuration in seen:
            cycle = steps[seen[configuration]:]
            counts = {agent: sum(1 for s in cycle
                                 if f"{agent}.start" in s)
                      for agent in agents}
            quotients = {counts[agent] // repetition[agent]
                         for agent in agents
                         if counts[agent] % repetition[agent] == 0}
            exact = {agent for agent in agents
                     if counts[agent] % repetition[agent] == 0}
            if (len(exact) == len(agents) and len(quotients) == 1
                    and min(quotients) >= 1):
                return True, (f"ASAP cycle of {len(cycle)} step(s) "
                              f"fires {quotients.pop()}x the vector")
            return False, (f"ASAP cycle fires {counts}, not a positive "
                           f"multiple of {repetition}")
        seen[configuration] = index
    return False, f"no configuration revisit in {_MAX_ASAP_STEPS} steps"


def _try_compile(model) -> bool:
    """Whether the symbolic backend actually accepts *model*."""
    try:
        TransitionSystem(model.clone())
    except SymbolicEncodingError:
        return False
    return True


def _confirm_unencodable(handle, confirm: dict) -> tuple[bool, str]:
    if _try_compile(handle.execution_model):
        return False, "compile succeeded despite the diagnostic"
    return True, "compile raised SymbolicEncodingError"


def _confirm_conformance(handle, confirm: dict) -> tuple[bool, str]:
    try:
        assert_conformance(handle.source_model)
    except ConformanceError:
        return True, "assert_conformance raised ConformanceError"
    return False, "assert_conformance accepted the model"


_CONFIRMERS = {
    "deadlock": _confirm_deadlock,
    "dead-event": _confirm_dead_event,
    "repetition": _confirm_repetition,
    "unencodable": _confirm_unencodable,
    "conformance": _confirm_conformance,
}


def crosscheck_handle(handle, report: LintReport | None = None) -> dict:
    """Replay every confirmable diagnostic of *handle* on the engine.

    Returns ``{"model", "checks": [...], "mismatches": [...],
    "agree": bool}``; a diagnostic whose dynamic claim the engine does
    not reproduce — or an ERROR diagnostic with no confirm descriptor
    at all — is a mismatch.
    """
    if report is None:
        report = lint_handle(handle)
    checks: list[dict] = []
    mismatches: list[str] = []
    for diagnostic in report.diagnostics:
        confirm = diagnostic.data.get("confirm")
        if confirm is None:
            if diagnostic.severity == "error":
                mismatches.append(
                    f"{diagnostic.rule} at {diagnostic.path}: ERROR "
                    f"without a confirm descriptor")
            continue
        confirmer = _CONFIRMERS.get(confirm["kind"])
        if confirmer is None:
            mismatches.append(
                f"{diagnostic.rule} at {diagnostic.path}: no confirmer "
                f"for kind {confirm['kind']!r}")
            continue
        ok, detail = confirmer(handle, confirm)
        checks.append({"rule": diagnostic.rule, "path": diagnostic.path,
                       "kind": confirm["kind"], "ok": ok,
                       "detail": detail})
        if not ok:
            mismatches.append(
                f"{diagnostic.rule} at {diagnostic.path}: {detail}")

    # predictor ⇔ backend, on every model (clean ones included)
    predicted = predict(handle.execution_model).encodable
    actual = _try_compile(handle.execution_model)
    checks.append({"rule": "ENC001", "path": handle.name,
                   "kind": "encodability", "ok": predicted == actual,
                   "detail": f"predicted encodable={predicted}, "
                             f"compile succeeded={actual}"})
    if predicted != actual:
        mismatches.append(
            f"ENC001 on {handle.name}: predictor says "
            f"encodable={predicted} but compile "
            f"{'succeeded' if actual else 'raised'}")

    return {"model": handle.name, "frontend": handle.frontend,
            "diagnostics": len(report.diagnostics),
            "checks": checks, "mismatches": mismatches,
            "agree": not mismatches}


def crosscheck_corpus(handles) -> dict:
    """Run :func:`crosscheck_handle` over a corpus of handles (the
    shape mirrors ``repro selftest`` phases: per-model reports plus an
    aggregate ``agree``)."""
    reports = [crosscheck_handle(handle) for handle in handles]
    mismatches = [m for r in reports for m in r["mismatches"]]
    return {"models": len(reports), "reports": reports,
            "checks": sum(len(r["checks"]) for r in reports),
            "mismatches": mismatches, "agree": not mismatches}
