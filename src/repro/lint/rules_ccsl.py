"""CCSL rules: dead events, contradictory parameters, unbound clocks.

These rules reason over the *runtime* constraint objects attached to a
loaded :class:`~repro.engine.execution_model.ExecutionModel`, never
over concrete executions. Dead-event claims (``error`` severity) all
confirm dynamically as ``AG !occurs(<event>)`` on the untruncated
state space.
"""

from __future__ import annotations

import math

from repro.boolalg.cnf import to_cnf_clauses
from repro.boolalg.expr import And
from repro.boolalg.sat import solve_clauses
from repro.ccsl.stateful import (
    CausesRuntime,
    DelayedForRuntime,
    FilterByRuntime,
    PeriodicOnRuntime,
    PrecedesRuntime,
    SampledOnRuntime,
)
from repro.lint.core import Diagnostic, register_rule
from repro.moccml.semantics.runtime import CompositeRuntime, FormulaRuntime


def leaf_runtimes(model) -> list:
    """All constraint runtimes, with composites flattened."""
    leaves = []
    queue = list(model.constraints)
    while queue:
        runtime = queue.pop(0)
        if isinstance(runtime, CompositeRuntime):
            queue.extend(runtime.children)
        else:
            leaves.append(runtime)
    return leaves


def _dead_event_diag(rule: str, model, event: str, message: str,
                     data: dict | None = None) -> Diagnostic:
    payload = dict(data or {})
    payload["event"] = event
    payload["confirm"] = {"kind": "dead-event", "event": event}
    return Diagnostic(rule=rule, severity="error",
                      path=f"{model.name}.{event}", message=message,
                      data=payload)


@register_rule(
    "CCS001", severity="error", requires="execution_model",
    summary="event forbidden by the conjunction of the stateless "
            "(relational) constraints",
    confirm="`AG !occurs(<event>)` HOLDS on the untruncated space")
def rule_stateless_dead(handle):
    """SAT-check each event against the conjunction of every stateless
    :class:`FormulaRuntime` step formula. Those formulas never change,
    and stateful constraints only *remove* steps, so an event that no
    satisfying assignment of the conjunction fires is definitely dead
    (catches e.g. ``Coincides(a, b)`` + ``Excludes(a, b)``)."""
    model = handle.execution_model
    formulas = [runtime.step_formula()
                for runtime in leaf_runtimes(model)
                if isinstance(runtime, FormulaRuntime)]
    if not formulas:
        return
    conjunction = And(*formulas)
    support = conjunction.support()
    # pay the CNF conversion once, then probe events under assumptions;
    # every satisfying assignment found proves all its fired events
    # alive at once, so clean models need only a couple of solver runs
    clauses = to_cnf_clauses(conjunction)
    alive: set[str] = set()
    base = solve_clauses(clauses, prefer_true=True)
    if base is not None:
        alive |= {name for name, value in base.items() if value}
    for event in model.events:
        if event not in support or event in alive:
            continue
        witness = (None if base is None else
                   solve_clauses(clauses, {event: True}, prefer_true=True))
        if witness is not None:
            alive |= {name for name, value in witness.items() if value}
            continue
        yield _dead_event_diag(
            "CCS001", model, event,
            f"event {event!r} cannot occur in any step satisfying the "
            f"stateless constraints")


def precedence_edges(model) -> list[tuple[str, str, bool, str]]:
    """``(cause, effect, strict, label)`` edges of the precedence
    digraph.

    *strict* means the effect is forbidden (even simultaneously) while
    the constraint is in its initial state; a weak edge only forces
    ``effect in step => cause in step`` at the initial state. Both
    properties are exactly what :func:`rule_precedence_cycle` needs for
    its first-constrained-step argument.
    """
    edges = []
    for runtime in leaf_runtimes(model):
        label = runtime.label
        if isinstance(runtime, PrecedesRuntime):  # Alternates included
            edges.append((runtime.cause, runtime.effect, True, label))
        elif isinstance(runtime, CausesRuntime):
            edges.append((runtime.cause, runtime.effect, False, label))
        elif isinstance(runtime, DelayedForRuntime):
            edges.append((runtime.base, runtime.delayed,
                          runtime.depth >= 1, label))
        elif isinstance(runtime, PeriodicOnRuntime):
            edges.append((runtime.base, runtime.filtered,
                          runtime.offset > 0, label))
        elif isinstance(runtime, FilterByRuntime):
            edges.append((runtime.base, runtime.filtered,
                          not runtime.word[0], label))
        elif isinstance(runtime, SampledOnRuntime):
            edges.append((runtime.base, runtime.result, False, label))
            edges.append((runtime.trigger, runtime.result, False, label))
    return edges


def _strongly_connected(edges) -> list[set[str]]:
    """Kosaraju's algorithm (graphs here are tiny)."""
    forward: dict[str, set[str]] = {}
    backward: dict[str, set[str]] = {}
    nodes: set[str] = set()
    for cause, effect, _strict, _label in edges:
        forward.setdefault(cause, set()).add(effect)
        backward.setdefault(effect, set()).add(cause)
        nodes |= {cause, effect}

    order: list[str] = []
    seen: set[str] = set()
    for root in sorted(nodes):
        if root in seen:
            continue
        stack = [(root, iter(sorted(forward.get(root, ()))))]
        seen.add(root)
        while stack:
            node, children = stack[-1]
            for child in children:
                if child not in seen:
                    seen.add(child)
                    stack.append(
                        (child, iter(sorted(forward.get(child, ())))))
                    break
            else:
                order.append(node)
                stack.pop()

    components: list[set[str]] = []
    assigned: set[str] = set()
    for root in reversed(order):
        if root in assigned:
            continue
        component = {root}
        queue = [root]
        while queue:
            node = queue.pop(0)
            for previous in backward.get(node, ()):
                if previous not in assigned and previous not in component:
                    component.add(previous)
                    queue.append(previous)
        assigned |= component
        components.append(component)
    return components


@register_rule(
    "CCS002", severity="error", requires="execution_model",
    summary="strict precedence cycle: a strongly connected set of "
            "events none of which can ever fire first",
    confirm="`AG !occurs(<event>)` HOLDS for every event on the cycle")
def rule_precedence_cycle(handle):
    """Flag every SCC of the precedence digraph that contains a strict
    intra-SCC edge.

    Soundness: consider the hypothetical first step containing any SCC
    event. Every intra-SCC constraint is still in its initial state
    (its counters move only on SCC events), so each strict edge forbids
    its effect outright and each weak edge forces ``effect in step =>
    cause in step``. Walking backward from the supposed occurrence
    along an SCC path through the strict edge's effect yields either a
    weak chain pulling that forbidden effect into the step or a strict
    edge into an event already in the step — a contradiction either
    way. Pure-weak (``Causes``) cycles are excluded: simultaneous
    firing satisfies them.
    """
    model = handle.execution_model
    edges = precedence_edges(model)
    for component in _strongly_connected(edges):
        intra = [edge for edge in edges
                 if edge[0] in component and edge[1] in component]
        strict = [edge for edge in intra if edge[2]]
        if not strict:
            continue
        members = sorted(component)
        for event in members:
            yield _dead_event_diag(
                "CCS002", model, event,
                f"event {event!r} lies on a strict precedence cycle "
                f"{{{', '.join(members)}}} (via "
                f"{', '.join(sorted({e[3] for e in strict}))}) and can "
                f"never fire",
                data={"cycle": members})


@register_rule(
    "CCS003", severity="warning", requires="execution_model",
    summary="event bound to no constraint (free-running clock)",
    confirm="none (a free clock is legal; it doubles the step space "
            "per unconstrained event, which is usually an oversight)",
    frontends=("ccsl", "moccml"))
def rule_unconstrained_events(handle):
    model = handle.execution_model
    constrained: set[str] = set()
    for runtime in leaf_runtimes(model):
        constrained |= runtime.constrained_events
    for event in model.events:
        if event in constrained:
            continue
        yield Diagnostic(
            rule="CCS003", severity="warning",
            path=f"{model.name}.{event}",
            message=f"event {event!r} is bound to no constraint: it "
                    f"free-runs and doubles the step space",
            data={"event": event})


@register_rule(
    "CCS004", severity="error", requires="execution_model",
    summary="contradictory bounded-relation parameters (delay deeper "
            "than the precedence bound, clashing periodic filters, "
            "all-zero filter word)",
    confirm="`AG !occurs(<event>)` HOLDS for the strangled event")
def rule_parameter_contradictions(handle):
    model = handle.execution_model
    leaves = leaf_runtimes(model)

    # DelayedFor(d = b $ m) needs m occurrences of b before d may tick,
    # but Precedes(b, d, bound=n) caps count(b) - count(d) at n: with
    # m > n the base stalls before the delay elapses and d is dead.
    bounds: dict[tuple[str, str], list] = {}
    for runtime in leaves:
        if (isinstance(runtime, PrecedesRuntime)
                and runtime.bound is not None):
            bounds.setdefault(
                (runtime.cause, runtime.effect), []).append(runtime)
    for runtime in leaves:
        if not isinstance(runtime, DelayedForRuntime):
            continue
        for other in bounds.get((runtime.base, runtime.delayed), []):
            if runtime.depth <= other.bound:
                continue
            yield _dead_event_diag(
                "CCS004", model, runtime.delayed,
                f"{runtime.label} delays {runtime.delayed!r} by "
                f"{runtime.depth} occurrences of {runtime.base!r}, but "
                f"{other.label} lets it run only {other.bound} ahead: "
                f"{runtime.delayed!r} can never start",
                data={"constraints": [runtime.label, other.label]})

    # Two periodic filters of the same base into the same filtered
    # event must agree on some index: solvable iff the offsets agree
    # modulo gcd of the periods (Chinese remainders).
    periodic: dict[tuple[str, str], list] = {}
    for runtime in leaves:
        if isinstance(runtime, PeriodicOnRuntime):
            periodic.setdefault(
                (runtime.filtered, runtime.base), []).append(runtime)
    for (filtered, _base), group in sorted(periodic.items()):
        for index, first in enumerate(group):
            for second in group[index + 1:]:
                gcd = math.gcd(first.period, second.period)
                if (first.offset - second.offset) % gcd == 0:
                    continue
                yield _dead_event_diag(
                    "CCS004", model, filtered,
                    f"{first.label} and {second.label} never agree on "
                    f"an occurrence index (offsets differ modulo "
                    f"{gcd}): {filtered!r} can never tick",
                    data={"constraints": [first.label, second.label]})

    # An all-zero filter word keeps no occurrence at all.
    for runtime in leaves:
        if not isinstance(runtime, FilterByRuntime):
            continue
        word = runtime.word
        if "1" in word.prefix or "1" in word.period:
            continue
        yield _dead_event_diag(
            "CCS004", model, runtime.filtered,
            f"{runtime.label} filters by an all-zero word: "
            f"{runtime.filtered!r} can never tick",
            data={"constraints": [runtime.label]})
