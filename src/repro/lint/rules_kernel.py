"""Kernel conformance findings surfaced as lint rules (``KER***``).

Thin adapters over
:func:`repro.kernel.validation.conformance_diagnostics`: the kernel
owns the traversal and the stable rule IDs; lint owns severity and
reporting. Front-end loaders run :func:`assert_conformance` before
weaving, so these fire mainly on programmatically-built models.
"""

from __future__ import annotations

from repro.kernel.validation import conformance_diagnostics
from repro.lint.core import Diagnostic, register_rule

_CONFIRM = {"kind": "conformance"}


def _kernel_rule(rule_id: str, summary: str):
    @register_rule(
        rule_id, severity="error", requires="source_model",
        summary=summary,
        confirm="`assert_conformance` raises ConformanceError with the "
                "same message")
    def rule(handle, _rule_id=rule_id):
        for finding in conformance_diagnostics(handle.source_model):
            if finding.rule != _rule_id:
                continue
            yield Diagnostic(
                rule=_rule_id, severity="error", path=finding.path,
                message=finding.message,
                data={"feature": finding.feature, "confirm": _CONFIRM})

    return rule


rule_required_unset = _kernel_rule(
    "KER001", "required attribute or reference unset")
rule_abstract_instance = _kernel_rule(
    "KER002", "instance of an abstract metaclass")
rule_closure_violation = _kernel_rule(
    "KER003", "cross-reference pointing outside the model closure")
rule_containment_cycle = _kernel_rule(
    "KER004", "containment cycle")
