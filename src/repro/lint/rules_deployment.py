"""Deployment/PAM rules: allocation completeness, platform pressure.

:func:`~repro.deployment.weaver.deploy` *refuses* an allocation with
missing or unknown entries, so the two ERROR rules can never fire on a
successfully loaded handle — they exist (and are unit-tested) through
:func:`allocation_diagnostics`, the pre-deploy entry point tools can
run on a candidate ``(app, platform, allocation)`` triple before
committing to the weave. The WARN/INFO rules read the woven
:class:`~repro.deployment.weaver.DeploymentResult` bookkeeping.
"""

from __future__ import annotations

from repro.lint.core import Diagnostic, register_rule


def allocation_diagnostics(app, platform, allocation) -> list[Diagnostic]:
    """DEP001/DEP002 findings for a candidate allocation (pre-deploy).

    Mirrors :meth:`Allocation.check` with structured output: DEP001 for
    agents with no processor, DEP002 for entries naming unknown agents
    or processors.
    """
    diagnostics = []
    agent_names = {agent.name for agent in app.get("agents")}
    processor_names = {proc.name for proc in platform.processors()}
    for agent in sorted(agent_names):
        if agent in allocation.mapping:
            continue
        diagnostics.append(Diagnostic(
            rule="DEP001", severity="error",
            path=f"{app.name}.{agent}",
            message=f"agent {agent!r} has no allocation",
            data={"agent": agent,
                  "confirm": {"kind": "deploy-error"}}))
    for agent, processor in allocation.mapping.items():
        if agent not in agent_names:
            diagnostics.append(Diagnostic(
                rule="DEP002", severity="error",
                path=f"{app.name}.{agent}",
                message=f"allocation names unknown agent {agent!r}",
                data={"agent": agent,
                      "confirm": {"kind": "deploy-error"}}))
        if processor not in processor_names:
            diagnostics.append(Diagnostic(
                rule="DEP002", severity="error",
                path=f"{app.name}.{agent}",
                message=f"agent {agent!r} allocated to unknown "
                        f"processor {processor!r}",
                data={"agent": agent, "processor": processor,
                      "confirm": {"kind": "deploy-error"}}))
    return diagnostics


@register_rule(
    "DEP001", severity="error", requires="deployment",
    summary="agent with no processor allocation",
    confirm="`deploy()` refuses the model with a DeploymentError (a "
            "loaded handle is therefore always clean)")
def rule_unallocated(handle):
    result = handle.deployment
    yield from (d for d in allocation_diagnostics(
        handle.application, result.platform, result.allocation)
        if d.rule == "DEP001")


@register_rule(
    "DEP002", severity="error", requires="deployment",
    summary="allocation entry naming an unknown agent or processor",
    confirm="`deploy()` refuses the model with a DeploymentError (a "
            "loaded handle is therefore always clean)")
def rule_unknown_allocation(handle):
    result = handle.deployment
    yield from (d for d in allocation_diagnostics(
        handle.application, result.platform, result.allocation)
        if d.rule == "DEP002")


@register_rule(
    "DEP003", severity="warning", requires="deployment",
    summary="processor hosting several agents (mutex serialization)",
    confirm="none (legal, but the woven mutex serializes the hosted "
            "agents and often halves throughput)")
def rule_shared_processor(handle):
    result = handle.deployment
    for processor in result.platform.processors():
        hosted = result.allocation.agents_on(processor.name)
        if len(hosted) < 2:
            continue
        yield Diagnostic(
            rule="DEP003", severity="warning",
            path=f"{result.platform.name}.{processor.name}",
            message=f"processor {processor.name!r} hosts "
                    f"{len(hosted)} agents ({', '.join(hosted)}): "
                    f"their executions are serialized by a mutex",
            data={"processor": processor.name, "agents": hosted})


@register_rule(
    "DEP004", severity="info", requires="deployment",
    summary="cross-processor place subject to communication latency",
    confirm="none (derived fact: the woven comm-delay constraint "
            "postpones reads by the link latency)")
def rule_comm_delay(handle):
    result = handle.deployment
    for place_name in sorted(result.comm_delays):
        runtime = result.comm_delays[place_name]
        yield Diagnostic(
            rule="DEP004", severity="info",
            path=f"{handle.application.name}.{place_name}",
            message=f"place {place_name!r} crosses processors: reads "
                    f"lag writes by latency {runtime.latency}",
            data={"place": place_name, "latency": runtime.latency})
