"""The encodability predictor as a lint rule (``ENC001``).

Wraps :func:`repro.engine.encodability.predict`: a model some
constraint of which admits unboundedly many local states cannot be
compiled by the symbolic backend (``SymbolicEncodingError``) and is
flagged here at admission time. WARN, not ERROR — such models are
legal and run fine under ``strategy="explicit"`` — but the claim is
still engine-checked: the cross-check harness asserts the predictor
agrees with the actual compile outcome on every corpus model.
"""

from __future__ import annotations

from repro.engine.encodability import predict
from repro.lint.core import Diagnostic, register_rule


@register_rule(
    "ENC001", severity="warning", requires="execution_model",
    summary="model not finitely encodable: the symbolic backend would "
            "raise SymbolicEncodingError",
    confirm="compiling the model raises `SymbolicEncodingError` iff "
            "this diagnostic fires (checked corpus-wide)")
def rule_unencodable(handle):
    model = handle.execution_model
    report = predict(model)
    if report.encodable:
        return
    blockers = report.blockers
    yield Diagnostic(
        rule="ENC001", severity="warning",
        path=f"{model.name}.{{{', '.join(v.label for v in blockers)}}}",
        message=f"model is not finitely encodable "
                f"({report.reason}); use strategy='explicit' or bound "
                f"the offending relation(s)",
        data={"report": report.to_doc(),
              "confirm": {"kind": "unencodable"}})
