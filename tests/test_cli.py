"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main

APPLICATION = """
application demo {
  agent src
  agent dst
  place src -> dst push 1 pop 1 capacity 2
}
"""

DEPLOYMENT = """
platform board {
  processor cpu
}
allocation {
  src, dst -> cpu
}
"""


@pytest.fixture()
def app_file(tmp_path):
    path = tmp_path / "demo.sigpml"
    path.write_text(APPLICATION)
    return str(path)


@pytest.fixture()
def deployment_file(tmp_path):
    path = tmp_path / "board.deploy"
    path.write_text(DEPLOYMENT)
    return str(path)


class TestSimulate:
    def test_basic_run(self, app_file, capsys):
        assert main(["simulate", app_file, "--steps", "6"]) == 0
        out = capsys.readouterr().out
        assert "steps: 6" in out
        assert "src.start" in out

    def test_policies(self, app_file, capsys):
        for policy in ("asap", "minimal", "random"):
            assert main(["simulate", app_file, "--policy", policy,
                         "--steps", "4"]) == 0

    def test_vcd_export(self, app_file, tmp_path, capsys):
        vcd_path = tmp_path / "trace.vcd"
        assert main(["simulate", app_file, "--vcd", str(vcd_path)]) == 0
        content = vcd_path.read_text()
        assert "$enddefinitions" in content

    def test_missing_file(self, capsys):
        assert main(["simulate", "/nonexistent.sigpml"]) == 1
        assert "error" in capsys.readouterr().err

    def test_parse_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.sigpml"
        bad.write_text("application x {\n banana\n}\n")
        assert main(["simulate", str(bad)]) == 1
        assert "error" in capsys.readouterr().err


class TestExplore:
    def test_statespace_report(self, app_file, capsys):
        assert main(["explore", app_file]) == 0
        out = capsys.readouterr().out
        assert "states" in out
        assert "deadlocks: 0" in out

    def test_variant_flag(self, app_file, capsys):
        assert main(["explore", app_file, "--variant", "multiport"]) == 0


class TestCheck:
    def test_holds_exit_zero(self, app_file, capsys):
        assert main(["check", app_file, "AG !deadlock"]) == 0
        out = capsys.readouterr().out
        assert "verdict:  HOLDS" in out
        assert "property: AG !deadlock" in out

    def test_fails_exit_one_with_counterexample(self, app_file, capsys):
        assert main(["check", app_file, "AG occurs(src.start)"]) == 1
        out = capsys.readouterr().out
        assert "verdict:  FAILS" in out
        assert "counterexample:" in out
        assert "src.start" in out  # the ASCII trace diagram

    def test_unknown_exit_one_with_reason(self, app_file, capsys):
        assert main(["check", app_file, "AG !deadlock",
                     "--strategy", "explicit", "--max-states", "1"]) == 1
        out = capsys.readouterr().out
        assert "verdict:  UNKNOWN" in out
        assert "truncated" in out

    def test_strategies_agree(self, app_file, capsys):
        for strategy in ("explicit", "symbolic", "auto"):
            assert main(["check", app_file, "AF occurs(dst.start)",
                         "--strategy", strategy]) == 0

    def test_json_payload(self, app_file, capsys):
        assert main(["check", app_file, "EF occurs(dst.start)",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "check"
        assert doc["data"]["verdict"] == "holds"
        assert doc["data"]["witness_kind"] == "witness"
        assert "version" in doc

    def test_syntax_error_reported(self, app_file, capsys):
        assert main(["check", app_file, "AG (((("]) == 1
        assert "property syntax" in capsys.readouterr().err

    def test_batch_check_spec(self, app_file, tmp_path, capsys):
        batch = tmp_path / "batch.json"
        batch.write_text(json.dumps({
            "models": {"demo": {"frontend": "sigpml", "path": app_file}},
            "runs": [{"kind": "check", "model": "demo",
                      "property": "AG !deadlock", "strategy": "auto"}],
        }))
        assert main(["batch", str(batch)]) == 0
        out = capsys.readouterr().out
        assert "HOLDS" in out


class TestAnalyze:
    def test_repetition_and_pass(self, app_file, capsys):
        assert main(["analyze", app_file]) == 0
        out = capsys.readouterr().out
        assert "repetition vector" in out
        assert "src: 1" in out
        assert "PASS:" in out


class TestDot:
    def test_application_dot(self, app_file, capsys):
        assert main(["dot", "application", app_file]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert '"src" -> "dst"' in out

    def test_automaton_dot(self, capsys):
        assert main(["dot", "automaton", "--constraint",
                     "PlaceConstraint"]) == 0
        out = capsys.readouterr().out
        assert "digraph" in out

    def test_unknown_constraint(self, capsys):
        assert main(["dot", "automaton", "--constraint", "Nope"]) == 2

    def test_statespace_dot(self, app_file, capsys):
        assert main(["dot", "statespace", app_file]) == 0
        assert "digraph" in capsys.readouterr().out


class TestJsonOutput:
    """Golden --json output: stable, parseable, spec-complete."""

    def test_simulate_json(self, app_file, capsys):
        assert main(["simulate", app_file, "--steps", "6", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "simulate"
        assert doc["status"] == "ok"
        assert doc["data"]["steps_run"] == 6
        assert doc["data"]["counts"]["src.start"] == 4
        assert doc["spec"]["policy"] == "asap"
        assert len(doc["data"]["trace"]) == 6

    def test_simulate_json_is_byte_stable(self, app_file, capsys):
        assert main(["simulate", app_file, "--steps", "6", "--json"]) == 0
        first = capsys.readouterr().out
        assert main(["simulate", app_file, "--steps", "6", "--json"]) == 0
        assert capsys.readouterr().out == first

    def test_simulate_json_random_policy(self, app_file, capsys):
        assert main(["simulate", app_file, "--policy", "random",
                     "--seed", "3", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["spec"]["policy"] == {"name": "random", "seed": 3}

    def test_simulate_priority_weights(self, app_file, capsys):
        assert main(["simulate", app_file, "--policy", "priority",
                     "--weight", "src.start=5", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["spec"]["policy"]["weights"] == {"src.start": 5}

    def test_explore_json_round_trips(self, app_file, capsys):
        from repro.workbench import RunResult
        assert main(["explore", app_file, "--json"]) == 0
        out = capsys.readouterr().out
        result = RunResult.from_json(out)
        assert result.data["summary"]["deadlocks"] == 0
        assert result.statespace().n_states \
            == result.data["summary"]["states"]

    def test_analyze_json(self, app_file, capsys):
        assert main(["analyze", app_file, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["data"]["repetition"] == {"src": 1, "dst": 1}
        assert doc["data"]["schedule"] == ["src", "dst"]

    def test_campaign_json(self, app_file, capsys):
        assert main(["campaign", app_file, "--steps", "8", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        policies = {row["policy"] for row in doc["data"]["rows"]}
        assert policies == {"asap", "minimal", "random"}

    def test_simulate_json_still_writes_vcd(self, app_file, tmp_path,
                                            capsys):
        vcd_path = tmp_path / "trace.vcd"
        assert main(["simulate", app_file, "--vcd", str(vcd_path),
                     "--json"]) == 0
        assert "$enddefinitions" in vcd_path.read_text()
        json.loads(capsys.readouterr().out)

    def test_dot_json(self, app_file, capsys):
        assert main(["dot", "application", app_file, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "dot"
        assert doc["dot"].startswith("digraph")

    def test_deploy_json(self, app_file, deployment_file, capsys):
        assert main(["deploy", app_file, deployment_file, "--steps", "4",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["deployment"]["metadata"]["mutexes"] == 1
        assert doc["simulate"]["data"]["steps_run"] == 4


class TestBatch:
    def batch_file(self, tmp_path, app_file, runs):
        document = {
            "models": {"demo": {"frontend": "sigpml", "path": app_file}},
            "runs": runs,
        }
        path = tmp_path / "batch.json"
        path.write_text(json.dumps(document))
        return str(path)

    def test_two_specs_two_results(self, tmp_path, app_file, capsys):
        path = self.batch_file(tmp_path, app_file, [
            {"kind": "simulate", "model": "demo", "steps": 5},
            {"kind": "explore", "model": "demo", "max_states": 100},
        ])
        assert main(["batch", path, "--json"]) == 0
        docs = json.loads(capsys.readouterr().out)
        assert len(docs) == 2
        assert [doc["kind"] for doc in docs] == ["simulate", "explore"]
        assert all(doc["status"] == "ok" for doc in docs)

    def test_text_mode_streams_summaries(self, tmp_path, app_file,
                                         capsys):
        path = self.batch_file(tmp_path, app_file, [
            {"kind": "simulate", "model": "demo", "steps": 5},
            {"kind": "analyze", "model": "demo"},
        ])
        assert main(["batch", path]) == 0
        out = capsys.readouterr().out
        assert "2 run(s), 0 failure(s)" in out
        assert "simulate" in out and "analyze" in out

    def test_workers_do_not_change_output(self, tmp_path, app_file,
                                          capsys):
        path = self.batch_file(tmp_path, app_file, [
            {"kind": "simulate", "model": "demo", "steps": 6},
            {"kind": "explore", "model": "demo"},
            {"kind": "campaign", "model": "demo", "steps": 6},
        ])
        assert main(["batch", path, "--json"]) == 0
        sequential = capsys.readouterr().out
        assert main(["batch", path, "--json", "--workers", "4"]) == 0
        assert capsys.readouterr().out == sequential

    def test_bare_list_with_path_models(self, tmp_path, app_file, capsys):
        path = tmp_path / "bare.json"
        path.write_text(json.dumps([
            {"kind": "simulate", "model": app_file, "steps": 4},
            {"kind": "simulate", "model": app_file, "steps": 5},
        ]))
        assert main(["batch", str(path), "--json"]) == 0
        docs = json.loads(capsys.readouterr().out)
        assert [doc["data"]["steps_run"] for doc in docs] == [4, 5]

    def test_failures_flip_the_exit_code(self, tmp_path, app_file,
                                         capsys):
        path = self.batch_file(tmp_path, app_file, [
            {"kind": "simulate", "model": "demo",
             "policy": {"name": "nope"}},
        ])
        assert main(["batch", path, "--json"]) == 1
        docs = json.loads(capsys.readouterr().out)
        assert docs[0]["status"] == "error"

    def test_empty_batch_rejected(self, tmp_path, capsys):
        path = tmp_path / "empty.json"
        path.write_text("[]")
        assert main(["batch", str(path)]) == 2
        assert "no runs" in capsys.readouterr().err


class TestDeploy:
    def test_deploy_and_simulate(self, app_file, deployment_file, capsys):
        assert main(["deploy", app_file, deployment_file,
                     "--steps", "6"]) == 0
        out = capsys.readouterr().out
        assert "1 mutex(es)" in out
        assert "steps: 6" in out

    def test_deploy_with_exploration(self, app_file, deployment_file,
                                     capsys):
        assert main(["deploy", app_file, deployment_file, "--explore",
                     "--steps", "4"]) == 0
        assert "state space" in capsys.readouterr().out

    def test_deployment_without_allocation(self, app_file, tmp_path,
                                           capsys):
        partial = tmp_path / "partial.deploy"
        partial.write_text("platform p {\n processor cpu\n}\n")
        assert main(["deploy", app_file, str(partial)]) == 2


class TestVersion:
    def test_version_flag(self, capsys):
        import repro
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {repro.__version__}" in capsys.readouterr().out

    def test_version_in_json_payloads(self, app_file, capsys):
        import repro
        assert main(["explore", app_file, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == repro.__version__

    def test_version_in_dot_json(self, capsys):
        import repro
        assert main(["dot", "automaton", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == repro.__version__

    def test_fallback_version_matches_pyproject(self):
        # the source-checkout fallback in repro/__init__.py must track
        # the single declared version in pyproject.toml (3.10-compatible
        # regex parse; tomllib only exists from 3.11)
        import re
        from pathlib import Path

        pyproject = Path(__file__).resolve().parents[1] / "pyproject.toml"
        declared = re.search(r'^version = "([^"]+)"', pyproject.read_text(),
                             re.MULTILINE).group(1)
        source = (Path(__file__).resolve().parents[1] / "src" / "repro"
                  / "__init__.py").read_text()
        fallback = re.search(r'__version__ = "([^"]+)"', source).group(1)
        assert fallback == declared


class TestExploreStrategy:
    def test_symbolic_matches_explicit(self, app_file, capsys):
        outputs = {}
        for strategy in ("explicit", "symbolic", "auto"):
            assert main(["explore", app_file, "--strategy", strategy]) == 0
            outputs[strategy] = capsys.readouterr().out
        assert outputs["explicit"] == outputs["symbolic"]
        assert outputs["explicit"] == outputs["auto"]

    def test_strategy_recorded_in_json(self, app_file, capsys):
        assert main(["explore", app_file, "--strategy", "symbolic",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["data"]["strategy"] == "symbolic"
        assert doc["spec"]["strategy"] == "symbolic"


class TestSelftest:
    def test_selftest_passes(self, capsys):
        assert main(["selftest"]) == 0
        out = capsys.readouterr().out
        assert "selftest PASSED" in out
        assert "sigpml-chain" in out
        assert "ccsl-clocks" in out
        assert "artifact store" in out

    def test_selftest_json(self, capsys):
        import repro
        assert main(["selftest", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "selftest"
        assert doc["ok"] is True
        assert doc["version"] == repro.__version__
        assert len(doc["reports"]) == 3
        assert all(report["agree"] for report in doc["reports"])
        # the cold/warm store round-trip rode along and agreed
        assert doc["store"]["agree"] is True
        assert doc["store"]["warm_hits"] == doc["store"]["specs"]


class TestBatchStore(TestBatch):
    """The farm flags: --store serves warm runs, --backend sweeps."""

    def runs(self):
        return [
            {"kind": "simulate", "model": "demo", "steps": 5},
            {"kind": "explore", "model": "demo", "max_states": 100},
            {"kind": "check", "model": "demo",
             "property": "AG !deadlock"},
        ]

    def test_second_run_is_all_cache_hits(self, tmp_path, app_file,
                                          capsys):
        path = self.batch_file(tmp_path, app_file, self.runs())
        store = str(tmp_path / "farm")
        assert main(["batch", path, "--store", store, "--json"]) == 0
        cold = json.loads(capsys.readouterr().out)
        assert all(doc["cached"] is False for doc in cold)
        assert main(["batch", path, "--store", store, "--json"]) == 0
        warm = json.loads(capsys.readouterr().out)
        assert all(doc["cached"] is True for doc in warm)
        # the artifacts themselves are byte-identical: only the
        # transport flag differs
        for one, two in zip(cold, warm):
            del one["cached"], two["cached"]
        assert warm == cold

    def test_text_mode_reports_hits(self, tmp_path, app_file, capsys):
        path = self.batch_file(tmp_path, app_file, self.runs())
        store = str(tmp_path / "farm")
        assert main(["batch", path, "--store", store]) == 0
        capsys.readouterr()
        assert main(["batch", path, "--store", store]) == 0
        out = capsys.readouterr().out
        assert "3 run(s), 0 failure(s), 3 cache hit(s)" in out
        assert "[cached]" in out

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_backends_match_the_default(self, tmp_path, app_file,
                                        backend, capsys):
        path = self.batch_file(tmp_path, app_file, self.runs())
        assert main(["batch", path, "--json"]) == 0
        baseline = capsys.readouterr().out
        assert main(["batch", path, "--json", "--backend", backend,
                     "--workers", "4"]) == 0
        assert capsys.readouterr().out == baseline

    def test_without_store_docs_carry_no_cached_flag(self, tmp_path,
                                                     app_file, capsys):
        path = self.batch_file(tmp_path, app_file, self.runs())
        assert main(["batch", path, "--json"]) == 0
        docs = json.loads(capsys.readouterr().out)
        assert all("cached" not in doc for doc in docs)


class TestStoreCommands:
    def populate(self, tmp_path, app_file, capsys):
        batch = tmp_path / "batch.json"
        batch.write_text(json.dumps([
            {"kind": "simulate", "model": app_file, "steps": 4},
            {"kind": "explore", "model": app_file, "max_states": 50},
        ]))
        store = str(tmp_path / "farm")
        assert main(["batch", str(batch), "--store", store]) == 0
        capsys.readouterr()
        return store

    def test_stats(self, tmp_path, app_file, capsys):
        store = self.populate(tmp_path, app_file, capsys)
        assert main(["store", "stats", store]) == 0
        out = capsys.readouterr().out
        assert "2 artifact(s)" in out

    def test_stats_json(self, tmp_path, app_file, capsys):
        import repro
        store = self.populate(tmp_path, app_file, capsys)
        assert main(["store", "stats", store, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "store-stats"
        assert doc["entries"] == 2
        assert doc["total_bytes"] > 0
        assert doc["version"] == repro.__version__

    def test_gc_max_entries(self, tmp_path, app_file, capsys):
        store = self.populate(tmp_path, app_file, capsys)
        assert main(["store", "gc", store, "--max-entries", "1",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "store-gc"
        assert doc["removed"] == 1
        assert doc["kept"] == 1

    def test_gc_without_limits_reports_noop(self, tmp_path, app_file,
                                            capsys):
        store = self.populate(tmp_path, app_file, capsys)
        assert main(["store", "gc", store]) == 0
        out = capsys.readouterr().out
        assert "removed 0" in out

    def test_missing_store_is_an_error_not_a_mkdir(self, tmp_path,
                                                   capsys):
        ghost = str(tmp_path / "no-such-store")
        assert main(["store", "stats", ghost]) == 2
        err = capsys.readouterr().err
        assert "does not exist" in err
        # inspection must not have conjured the directory
        import os
        assert not os.path.exists(ghost)
