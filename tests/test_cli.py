"""Tests for the command-line interface."""

import pytest

from repro.cli import main

APPLICATION = """
application demo {
  agent src
  agent dst
  place src -> dst push 1 pop 1 capacity 2
}
"""

DEPLOYMENT = """
platform board {
  processor cpu
}
allocation {
  src, dst -> cpu
}
"""


@pytest.fixture()
def app_file(tmp_path):
    path = tmp_path / "demo.sigpml"
    path.write_text(APPLICATION)
    return str(path)


@pytest.fixture()
def deployment_file(tmp_path):
    path = tmp_path / "board.deploy"
    path.write_text(DEPLOYMENT)
    return str(path)


class TestSimulate:
    def test_basic_run(self, app_file, capsys):
        assert main(["simulate", app_file, "--steps", "6"]) == 0
        out = capsys.readouterr().out
        assert "steps: 6" in out
        assert "src.start" in out

    def test_policies(self, app_file, capsys):
        for policy in ("asap", "minimal", "random"):
            assert main(["simulate", app_file, "--policy", policy,
                         "--steps", "4"]) == 0

    def test_vcd_export(self, app_file, tmp_path, capsys):
        vcd_path = tmp_path / "trace.vcd"
        assert main(["simulate", app_file, "--vcd", str(vcd_path)]) == 0
        content = vcd_path.read_text()
        assert "$enddefinitions" in content

    def test_missing_file(self, capsys):
        assert main(["simulate", "/nonexistent.sigpml"]) == 1
        assert "error" in capsys.readouterr().err

    def test_parse_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.sigpml"
        bad.write_text("application x {\n banana\n}\n")
        assert main(["simulate", str(bad)]) == 1
        assert "error" in capsys.readouterr().err


class TestExplore:
    def test_statespace_report(self, app_file, capsys):
        assert main(["explore", app_file]) == 0
        out = capsys.readouterr().out
        assert "states" in out
        assert "deadlocks: 0" in out

    def test_variant_flag(self, app_file, capsys):
        assert main(["explore", app_file, "--variant", "multiport"]) == 0


class TestAnalyze:
    def test_repetition_and_pass(self, app_file, capsys):
        assert main(["analyze", app_file]) == 0
        out = capsys.readouterr().out
        assert "repetition vector" in out
        assert "src: 1" in out
        assert "PASS:" in out


class TestDot:
    def test_application_dot(self, app_file, capsys):
        assert main(["dot", "application", app_file]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert '"src" -> "dst"' in out

    def test_automaton_dot(self, capsys):
        assert main(["dot", "automaton", "--constraint",
                     "PlaceConstraint"]) == 0
        out = capsys.readouterr().out
        assert "digraph" in out

    def test_unknown_constraint(self, capsys):
        assert main(["dot", "automaton", "--constraint", "Nope"]) == 2

    def test_statespace_dot(self, app_file, capsys):
        assert main(["dot", "statespace", app_file]) == 0
        assert "digraph" in capsys.readouterr().out


class TestDeploy:
    def test_deploy_and_simulate(self, app_file, deployment_file, capsys):
        assert main(["deploy", app_file, deployment_file,
                     "--steps", "6"]) == 0
        out = capsys.readouterr().out
        assert "1 mutex(es)" in out
        assert "steps: 6" in out

    def test_deploy_with_exploration(self, app_file, deployment_file,
                                     capsys):
        assert main(["deploy", app_file, deployment_file, "--explore",
                     "--steps", "4"]) == 0
        assert "state space" in capsys.readouterr().out

    def test_deployment_without_allocation(self, app_file, tmp_path,
                                           capsys):
        partial = tmp_path / "partial.deploy"
        partial.write_text("platform p {\n processor cpu\n}\n")
        assert main(["deploy", app_file, str(partial)]) == 2
