"""Integration tests for the deployment weaver."""

import pytest

from repro.deployment import Allocation, Platform, deploy
from repro.engine import AsapPolicy, Simulator, explore
from repro.engine.analysis import check_mutual_exclusion
from repro.errors import DeploymentError
from repro.sdf import SdfBuilder


def pipeline(cycles=(0, 0, 0), capacity=2):
    builder = SdfBuilder("pipe")
    for index, n in enumerate(cycles):
        builder.agent(f"a{index}", cycles=n)
    for index in range(len(cycles) - 1):
        builder.connect(f"a{index}", f"a{index+1}", capacity=capacity,
                        name=f"p{index}")
    return builder.build()


def mono_platform():
    platform = Platform("mono")
    platform.processor("cpu")
    return platform


class TestDeploy:
    def test_mono_serializes_firings(self):
        model, app = pipeline()
        allocation = Allocation({"a0": "cpu", "a1": "cpu", "a2": "cpu"})
        result = deploy(model, app, mono_platform(), allocation)
        assert "cpu" in result.mutexes
        space = explore(result.execution_model)
        starts = [f"a{i}.start" for i in range(3)]
        assert check_mutual_exclusion(space, starts)

    def test_infinite_resources_allow_parallel_firings(self):
        model, app = pipeline()
        from repro.sdf import build_execution_model
        space = explore(build_execution_model(model).execution_model)
        starts = [f"a{i}.start" for i in range(3)]
        assert not check_mutual_exclusion(space, starts)

    def test_mono_reduces_statespace_transitions(self):
        model, app = pipeline()
        from repro.sdf import build_execution_model
        free_space = explore(build_execution_model(model).execution_model)
        allocation = Allocation({"a0": "cpu", "a1": "cpu", "a2": "cpu"})
        result = deploy(model, app, mono_platform(), allocation)
        deployed_space = explore(result.execution_model)
        assert deployed_space.n_transitions < free_space.n_transitions

    def test_cross_processor_place_gets_comm_delay(self):
        model, app = pipeline()
        platform = Platform("duo")
        platform.processor("cpu0")
        platform.processor("cpu1")
        platform.link("cpu0", "cpu1", latency=2)
        allocation = Allocation({"a0": "cpu0", "a1": "cpu0", "a2": "cpu1"})
        result = deploy(model, app, platform, allocation)
        assert set(result.comm_delays) == {"p1"}
        assert result.comm_delays["p1"].latency == 2

    def test_same_processor_place_has_no_delay(self):
        model, app = pipeline()
        platform = Platform("duo")
        platform.processor("cpu0")
        platform.processor("cpu1")
        platform.link("cpu0", "cpu1", latency=2)
        allocation = Allocation({"a0": "cpu0", "a1": "cpu0", "a2": "cpu1"})
        result = deploy(model, app, platform, allocation)
        assert "p0" not in result.comm_delays

    def test_comm_delay_slows_pipeline(self):
        model, app = pipeline()
        platform = Platform("duo")
        platform.processor("cpu0")
        platform.processor("cpu1")
        platform.link("cpu0", "cpu1", latency=3)
        allocation = Allocation({"a0": "cpu0", "a1": "cpu0", "a2": "cpu1"})
        deployed = deploy(model, app, platform, allocation)
        slow = Simulator(deployed.execution_model, AsapPolicy()).run(30)

        from repro.sdf import build_execution_model
        free = Simulator(build_execution_model(model).execution_model,
                         AsapPolicy()).run(30)
        assert slow.trace.count("a2.start") < free.trace.count("a2.start")

    def test_speed_factor_scales_cycles(self):
        model, app = pipeline(cycles=(2, 0, 0))
        platform = Platform("slow")
        platform.processor("cpu", speed_factor=3)
        allocation = Allocation({"a0": "cpu", "a1": "cpu", "a2": "cpu"})
        result = deploy(model, app, platform, allocation)
        assert result.effective_cycles["a0"] == 6
        # the model itself is restored afterwards
        agents = {agent.name: agent for agent in app.get("agents")}
        assert agents["a0"].get("cycles") == 2

    def test_incomplete_allocation_rejected(self):
        model, app = pipeline()
        allocation = Allocation({"a0": "cpu"})
        with pytest.raises(DeploymentError):
            deploy(model, app, mono_platform(), allocation)

    def test_deployment_preserves_deadlock_freedom_here(self):
        model, app = pipeline()
        allocation = Allocation({"a0": "cpu", "a1": "cpu", "a2": "cpu"})
        result = deploy(model, app, mono_platform(), allocation)
        space = explore(result.execution_model)
        assert space.is_deadlock_free()

    def test_single_agent_processor_needs_no_mutex(self):
        model, app = pipeline()
        platform = Platform("trio")
        for index in range(3):
            platform.processor(f"cpu{index}")
        platform.fully_connect(latency=0)
        allocation = Allocation({f"a{i}": f"cpu{i}" for i in range(3)})
        result = deploy(model, app, platform, allocation)
        assert result.mutexes == {}
        assert result.comm_delays == {}  # latency 0 links
