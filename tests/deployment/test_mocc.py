"""Tests for the deployment constraint runtimes (mutex, comm delay)."""

import pytest

from repro.deployment import CommDelayRuntime, ProcessorMutexRuntime
from repro.errors import DeploymentError, SemanticsError


def accepts(runtime, *events):
    step = frozenset(events)
    formula = runtime.step_formula()
    support = formula.support() | runtime.constrained_events
    return formula.evaluate({name: name in step for name in support})


class TestProcessorMutex:
    def make(self):
        return ProcessorMutexRuntime("cpu", {
            "a": ("a.start", "a.stop"),
            "b": ("b.start", "b.stop"),
        })

    def test_idle_allows_single_start(self):
        mutex = self.make()
        assert accepts(mutex, "a.start")
        assert accepts(mutex, "b.start")
        assert not accepts(mutex, "a.start", "b.start")

    def test_atomic_firing_does_not_occupy(self):
        mutex = self.make()
        mutex.advance(frozenset({"a.start", "a.stop"}))
        assert mutex.running is None
        assert accepts(mutex, "b.start")

    def test_long_execution_occupies(self):
        mutex = self.make()
        mutex.advance(frozenset({"a.start"}))
        assert mutex.running == "a"
        assert not accepts(mutex, "b.start")
        assert not accepts(mutex, "a.start")

    def test_release_on_stop(self):
        mutex = self.make()
        mutex.advance(frozenset({"a.start"}))
        mutex.advance(frozenset({"a.stop"}))
        assert mutex.running is None
        assert accepts(mutex, "b.start")

    def test_no_handover_within_a_step(self):
        mutex = self.make()
        mutex.advance(frozenset({"a.start"}))
        # b cannot start in the very step a stops
        assert not accepts(mutex, "a.stop", "b.start")

    def test_violation_detected(self):
        mutex = self.make()
        mutex.advance(frozenset({"a.start"}))
        with pytest.raises(SemanticsError):
            mutex.advance(frozenset({"b.start"}))

    def test_simultaneous_starts_detected(self):
        mutex = self.make()
        with pytest.raises(SemanticsError):
            mutex.advance(frozenset({"a.start", "b.start"}))

    def test_clone_and_state_key(self):
        mutex = self.make()
        copy = mutex.clone()
        mutex.advance(frozenset({"a.start"}))
        assert copy.running is None
        assert copy.state_key() != mutex.state_key()

    def test_empty_windows_rejected(self):
        with pytest.raises(DeploymentError):
            ProcessorMutexRuntime("cpu", {})


class TestCommDelay:
    def test_latency_one(self):
        delay = CommDelayRuntime("w", "r", push=1, pop=1, latency=1)
        assert not accepts(delay, "r")
        delay.advance(frozenset({"w"}))
        # token wrote at step t matures at end of t, readable at t+1
        assert accepts(delay, "r")

    def test_latency_two(self):
        delay = CommDelayRuntime("w", "r", push=1, pop=1, latency=2)
        delay.advance(frozenset({"w"}))
        assert not accepts(delay, "r")
        delay.advance(frozenset())
        assert accepts(delay, "r")

    def test_latency_zero_is_transparent(self):
        delay = CommDelayRuntime("w", "r", push=1, pop=1, latency=0)
        delay.advance(frozenset({"w"}))
        assert accepts(delay, "r")

    def test_initial_tokens_immediately_available(self):
        delay = CommDelayRuntime("w", "r", push=1, pop=1, latency=3,
                                 initial_tokens=1)
        assert accepts(delay, "r")

    def test_rates(self):
        delay = CommDelayRuntime("w", "r", push=2, pop=3, latency=1)
        delay.advance(frozenset({"w"}))
        assert not accepts(delay, "r")  # 2 < 3
        delay.advance(frozenset({"w"}))
        assert accepts(delay, "r")  # 4 >= 3
        delay.advance(frozenset({"r"}))
        assert delay.matured == 1

    def test_early_read_raises(self):
        delay = CommDelayRuntime("w", "r", push=1, pop=1, latency=2)
        delay.advance(frozenset({"w"}))
        with pytest.raises(SemanticsError):
            delay.advance(frozenset({"r"}))

    def test_pipelined_writes(self):
        delay = CommDelayRuntime("w", "r", push=1, pop=1, latency=2)
        delay.advance(frozenset({"w"}))
        delay.advance(frozenset({"w"}))
        delay.advance(frozenset({"w", "r"}))  # first token matured
        assert delay.matured == 1  # second matured, third in flight
        assert delay.in_flight == (1, 0)

    def test_parameter_validation(self):
        with pytest.raises(DeploymentError):
            CommDelayRuntime("w", "r", push=0, pop=1, latency=1)
        with pytest.raises(DeploymentError):
            CommDelayRuntime("w", "r", push=1, pop=1, latency=-1)

    def test_clone_independent(self):
        delay = CommDelayRuntime("w", "r", push=1, pop=1, latency=2)
        delay.advance(frozenset({"w"}))
        copy = delay.clone()
        delay.advance(frozenset())
        assert copy.state_key() != delay.state_key()
