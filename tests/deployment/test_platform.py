"""Tests for the platform metamodel and allocations."""

import pytest

from repro.deployment import Allocation, Platform
from repro.errors import DeploymentError
from repro.sdf import SdfBuilder


class TestPlatform:
    def test_processors_and_links(self):
        platform = Platform("board")
        platform.processor("cpu0")
        platform.processor("cpu1", speed_factor=2)
        platform.link("cpu0", "cpu1", latency=3)
        assert platform.latency("cpu0", "cpu1") == 3
        assert platform.latency("cpu1", "cpu0") == 3  # bidirectional
        assert platform.latency("cpu0", "cpu0") == 0
        assert platform.get_processor("cpu1").speed_factor == 2

    def test_unidirectional_link(self):
        platform = Platform("board")
        platform.processor("a")
        platform.processor("b")
        platform.link("a", "b", latency=1, bidirectional=False)
        assert platform.latency("a", "b") == 1
        with pytest.raises(DeploymentError):
            platform.latency("b", "a")

    def test_fully_connect(self):
        platform = Platform("mesh")
        for index in range(3):
            platform.processor(f"p{index}")
        platform.fully_connect(latency=2)
        assert platform.latency("p0", "p2") == 2
        assert platform.latency("p2", "p1") == 2

    def test_duplicate_processor(self):
        platform = Platform("board")
        platform.processor("cpu")
        with pytest.raises(DeploymentError):
            platform.processor("cpu")

    def test_unknown_processor(self):
        platform = Platform("board")
        with pytest.raises(DeploymentError):
            platform.get_processor("ghost")
        platform.processor("cpu")
        with pytest.raises(DeploymentError):
            platform.link("cpu", "ghost")

    def test_bad_parameters(self):
        platform = Platform("board")
        platform.processor("a")
        platform.processor("b")
        with pytest.raises(DeploymentError):
            platform.processor("c", speed_factor=0)
        with pytest.raises(DeploymentError):
            platform.link("a", "b", latency=-1)


class TestAllocation:
    @pytest.fixture()
    def setup(self):
        builder = SdfBuilder("app")
        builder.agent("x")
        builder.agent("y")
        builder.connect("x", "y")
        _model, app = builder.build()
        platform = Platform("board")
        platform.processor("cpu0")
        platform.processor("cpu1")
        return app, platform

    def test_valid_allocation(self, setup):
        app, platform = setup
        allocation = Allocation({"x": "cpu0", "y": "cpu1"})
        assert allocation.check(app, platform) == []
        assert allocation.processor_of("x") == "cpu0"
        assert allocation.agents_on("cpu1") == ["y"]

    def test_missing_agent_reported(self, setup):
        app, platform = setup
        allocation = Allocation({"x": "cpu0"})
        issues = allocation.check(app, platform)
        assert any("'y'" in issue for issue in issues)

    def test_unknown_names_reported(self, setup):
        app, platform = setup
        allocation = Allocation({"x": "cpu0", "y": "cpu1", "z": "cpu9"})
        issues = allocation.check(app, platform)
        assert any("unknown agent" in issue for issue in issues)
        assert any("unknown processor" in issue for issue in issues)

    def test_unallocated_lookup_raises(self):
        allocation = Allocation({})
        with pytest.raises(DeploymentError):
            allocation.processor_of("ghost")
