"""Tests for the platform/allocation textual syntax."""

import pytest

from repro.deployment import parse_allocation, parse_deployment, parse_platform
from repro.errors import ParseError

DOCUMENT = """
// the dual-processor board of the PAM study
platform board {
  processor dsp
  processor cpu speed 2
  link dsp <-> cpu latency 3
}

allocation {
  hydro, framer, fft -> dsp
  detect, classify -> cpu
}
"""


class TestPlatformBlock:
    def test_full_document(self):
        platform, allocation = parse_deployment(DOCUMENT)
        assert platform.name == "board"
        assert platform.get_processor("cpu").speed_factor == 2
        assert platform.latency("dsp", "cpu") == 3
        assert platform.latency("cpu", "dsp") == 3
        assert allocation.processor_of("fft") == "dsp"
        assert allocation.agents_on("cpu") == ["detect", "classify"]

    def test_unidirectional_link(self):
        platform = parse_platform(
            "platform p {\n processor a\n processor b\n"
            " link a -> b latency 2\n}\n")
        assert platform.latency("a", "b") == 2
        from repro.errors import DeploymentError
        with pytest.raises(DeploymentError):
            platform.latency("b", "a")

    def test_connect_all(self):
        platform = parse_platform(
            "platform p {\n processor a\n processor b\n processor c\n"
            " connect all latency 4\n}\n")
        assert platform.latency("a", "c") == 4
        assert platform.latency("c", "b") == 4

    def test_default_latency(self):
        platform = parse_platform(
            "platform p {\n processor a\n processor b\n link a <-> b\n}\n")
        assert platform.latency("a", "b") == 1


class TestErrors:
    def test_missing_blocks(self):
        with pytest.raises(ParseError):
            parse_platform("allocation {\n x -> cpu\n}\n")
        with pytest.raises(ParseError):
            parse_allocation("platform p {\n processor a\n}\n")

    def test_duplicate_blocks(self):
        text = "platform a {\n processor x\n}\nplatform b {\n processor y\n}\n"
        with pytest.raises(ParseError):
            parse_deployment(text)

    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            parse_platform("platform p {\n processor a\n")

    def test_bad_lines(self):
        with pytest.raises(ParseError):
            parse_platform("platform p {\n cpu a\n}\n")
        with pytest.raises(ParseError):
            parse_deployment("allocation {\n x => cpu\n}\n")
        with pytest.raises(ParseError):
            parse_deployment("banana\n")

    def test_double_allocation(self):
        with pytest.raises(ParseError):
            parse_allocation("allocation {\n x -> a\n x -> b\n}\n")


class TestEndToEnd:
    def test_parse_then_deploy(self):
        from repro.deployment import deploy
        from repro.sdf import SdfBuilder

        builder = SdfBuilder("app")
        for name in ("hydro", "framer", "fft", "detect", "classify"):
            builder.agent(name)
        builder.connect("hydro", "framer", capacity=2)
        builder.connect("framer", "fft", capacity=2)
        builder.connect("fft", "detect", capacity=2)
        builder.connect("detect", "classify", capacity=2)
        model, app = builder.build()

        platform, allocation = parse_deployment(DOCUMENT)
        result = deploy(model, app, platform, allocation)
        assert set(result.mutexes) == {"dsp", "cpu"}
        assert set(result.comm_delays) == {"fft_detect"}
