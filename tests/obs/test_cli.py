"""``repro profile``, ``--trace``, and ``repro fuzz --trace-failures``."""

import json

import pytest

import repro.engine.ctl as ctl
from repro import obs
from repro.cli import main
from tests.fuzz.test_oracle import BUGGY_INDEX, BUGGY_SEED

APPLICATION = """
application obscli {
  agent src
  agent dst
  place src -> dst push 1 pop 1 capacity 2
}
"""


def chain_text(length: int, capacity: int = 2) -> str:
    agents = "\n".join(f"  agent a{i}" for i in range(length))
    places = "\n".join(
        f"  place a{i} -> a{i + 1} push 1 pop 1 capacity {capacity}"
        for i in range(length - 1))
    return (f"application chain{length}c{capacity} {{\n"
            f"{agents}\n{places}\n}}\n")


@pytest.fixture()
def app_file(tmp_path):
    path = tmp_path / "obscli.sigpml"
    path.write_text(APPLICATION)
    return str(path)


class TestProfile:
    def test_profile_check_writes_trace_and_report(self, app_file,
                                                   tmp_path, capsys):
        trace_path = tmp_path / "check.trace.json"
        code = main(["profile", "--trace", str(trace_path), "--top", "5",
                     "check", app_file, "AG !deadlock",
                     "--strategy", "symbolic"])
        assert code == 0
        err = capsys.readouterr().err
        assert "profile:" in err and "span(s)" in err
        assert "trace written to" in err
        doc = json.loads(trace_path.read_text())
        names = {event["name"] for event in doc["traceEvents"]}
        assert {"repro.profile", "ctl.check", "symbolic.compile",
                "symbolic.fixpoint",
                "symbolic.fixpoint.iteration"} <= names
        for event in doc["traceEvents"]:
            assert event["ph"] == "X"
            assert event["dur"] >= 0.0

    def test_profile_exit_code_passes_through(self, app_file, capsys):
        # EF deadlock fails on this model -> check exits 1, so must
        # profile
        code = main(["profile", "check", app_file, "EF deadlock",
                     "--strategy", "symbolic"])
        assert code == 1
        assert "profile:" in capsys.readouterr().err

    def test_profile_keeps_json_stdout_clean(self, app_file, capsys):
        code = main(["profile", "check", app_file, "AG !deadlock",
                     "--strategy", "symbolic", "--json"])
        assert code == 0
        captured = capsys.readouterr()
        doc = json.loads(captured.out)  # stdout is pure JSON
        assert doc["kind"] == "check"
        assert "profile:" in captured.err

    def test_profile_rejects_empty_and_recursive_commands(self, capsys):
        assert main(["profile"]) == 2
        assert "needs a repro command" in capsys.readouterr().err
        assert main(["profile", "profile", "selftest"]) == 2

    def test_profile_spans_cover_the_check_wall_time(self, tmp_path,
                                                     capsys):
        """The acceptance pin: on a chain12c2 symbolic check the
        instrumented phases account for >= 90% of the profiled wall
        time — the trace explains where the time went."""
        path = tmp_path / "chain12.sigpml"
        path.write_text(chain_text(12))
        previous = obs.disable_tracing()
        tracer = obs.enable_tracing()  # cmd_profile's capture reuses it
        try:
            code = main(["profile", "check", str(path), "AG !deadlock",
                         "--strategy", "symbolic"])
        finally:
            obs.disable_tracing()
            if previous is not None:
                obs.enable_tracing(previous)
        assert code == 0
        root = next(span for span in tracer.spans()
                    if span.name == "repro.profile")
        covered = sum(child.duration for child in root.children)
        assert root.duration > 0
        assert covered / root.duration >= 0.9, (covered, root.duration)


class TestTraceFlag:
    def test_trace_flag_without_profile(self, app_file, tmp_path,
                                        capsys):
        trace_path = tmp_path / "direct.trace.json"
        code = main(["check", app_file, "AG !deadlock",
                     "--strategy", "symbolic", "--trace",
                     str(trace_path)])
        assert code == 0
        names = {event["name"] for event in
                 json.loads(trace_path.read_text())["traceEvents"]}
        assert "ctl.check" in names
        assert "repro.profile" not in names  # no wrapper span here

    def test_trace_flag_on_explore(self, app_file, tmp_path, capsys):
        trace_path = tmp_path / "explore.trace.json"
        assert main(["explore", app_file, "--max-states", "100",
                     "--trace", str(trace_path)]) == 0
        names = {event["name"] for event in
                 json.loads(trace_path.read_text())["traceEvents"]}
        assert "explore.bfs" in names


def _break_truncation_guard(monkeypatch):
    def broken(space):
        checker = ctl._ExplicitChecker(space)
        checker.frontier = frozenset()
        checker.must_dead = checker.may_dead
        return checker

    monkeypatch.setattr(ctl, "_explicit_checker", broken)


class TestTraceFailures:
    def test_trace_failures_requires_out(self, capsys):
        assert main(["fuzz", "--cases", "1", "--trace-failures"]) == 2
        assert "--trace-failures needs --out" in capsys.readouterr().err

    def test_failure_traces_land_next_to_repro_docs(self, tmp_path,
                                                    monkeypatch,
                                                    capsys):
        _break_truncation_guard(monkeypatch)
        out = tmp_path / "artifacts"
        code = main(["fuzz", "--seed", str(BUGGY_SEED),
                     "--cases", str(BUGGY_INDEX + 1),
                     "--out", str(out), "--trace-failures", "--json"])
        assert code == 1
        docs = sorted(out.glob("fuzz-repro-*.json"))
        traces = sorted(out.glob("fuzz-repro-*.trace.json"))
        assert docs and traces
        # one trace per written repro doc, same numbering
        assert [t.name for t in traces] == \
            [d.name.replace(".json", ".trace.json")
             for d in docs if not d.name.endswith(".trace.json")]
        doc = json.loads(traces[0].read_text())
        names = {event["name"] for event in doc["traceEvents"]}
        assert "ctl.check" in names  # the replay's engine work
        # tracing stayed a per-failure affair: nothing leaked
        assert not obs.tracing_active()
