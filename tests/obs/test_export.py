"""Trace export surfaces: Chrome trace-event JSON, the self-time table."""

import json

from repro import obs
from repro.obs import chrome_trace_doc, profile_report, write_chrome_trace
from repro.obs import tracer as tracer_module


def record_sample(tracer):
    with obs.span("outer", model="demo"):
        with obs.span("inner", weird=object()):
            pass
        with obs.span("inner"):
            pass


class TestChromeTrace:
    def test_event_shape(self, tracer):
        record_sample(tracer)
        doc = chrome_trace_doc(tracer)
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert [event["name"] for event in events] == \
            ["outer", "inner", "inner"]
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert isinstance(event["tid"], int)
        outer = events[0]
        assert outer["args"] == {"model": "demo"}
        # nested events stay inside the parent's [ts, ts+dur] window
        for inner in events[1:]:
            assert inner["ts"] >= outer["ts"]
            assert inner["ts"] + inner["dur"] <= \
                outer["ts"] + outer["dur"] + 1e-3

    def test_non_json_attrs_are_repred(self, tracer):
        record_sample(tracer)
        doc = chrome_trace_doc(tracer)
        weird = doc["traceEvents"][1]["args"]["weird"]
        assert isinstance(weird, str) and "object" in weird
        json.dumps(doc)  # the whole document must serialize

    def test_tid_compaction_separates_pid_tracks(self, tracer):
        record_sample(tracer)
        # adopt a worker tree with a foreign pid and a huge tid: the
        # export must map it to its own small per-(pid, tid) track id
        worker = tracer_module.Tracer()
        with tracer_module.Span(worker, "farm.worker", {}):
            pass
        docs = worker.to_docs()
        docs[0]["tid"] = 139_873_345_108_800
        tracer.adopt(docs, pid=31337)
        events = chrome_trace_doc(tracer)["traceEvents"]
        worker_event = next(e for e in events
                            if e["name"] == "farm.worker")
        assert worker_event["pid"] == 31337
        assert worker_event["tid"] <= len(events)

    def test_write_chrome_trace_emits_loadable_json(self, tracer,
                                                    tmp_path):
        record_sample(tracer)
        path = tmp_path / "out.trace.json"
        returned = write_chrome_trace(tracer, path)
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(returned))
        assert loaded["traceEvents"]


class TestProfileReport:
    def test_self_time_table(self, tracer):
        record_sample(tracer)
        report = profile_report(tracer)
        lines = report.splitlines()
        assert lines[0].startswith("profile: 3 span(s), ")
        assert "span" in lines[1] and "self%" in lines[1]
        body = "\n".join(lines[2:])
        assert "outer" in body
        assert "inner" in body

    def test_top_limits_rows_and_reports_the_rest(self, tracer):
        for index in range(5):
            with obs.span(f"name{index}"):
                pass
        report = profile_report(tracer, top=2)
        assert "... and 3 more span name(s)" in report
        assert len(report.splitlines()) == 2 + 2 + 1

    def test_empty_trace_renders(self, tracer):
        report = profile_report(tracer)
        assert report.startswith("profile: 0 span(s)")
