"""The tracer against the real stack: engine spans, thread and process
fan-out, and the out-of-band guarantee (artifacts never change)."""

import os

import pytest

from repro import obs
from repro.obs import GLOBAL
from repro.workbench import CheckSpec, ExploreSpec, SimulateSpec, Workbench

APPLICATION = """
application obsdemo {
  agent src
  agent mid
  agent dst
  place src -> mid push 1 pop 1 capacity 2
  place mid -> dst push 1 pop 1 capacity 2
}
"""


def make_workbench(names):
    workbench = Workbench()
    for name in names:
        workbench.add(APPLICATION, name=name)
    return workbench


class TestEngineSpans:
    def test_symbolic_check_emits_the_promised_spans(self, tracer):
        workbench = make_workbench(["app"])
        result = workbench.run(CheckSpec("app", "AG !deadlock",
                                         strategy="symbolic"))
        assert result.status == "ok"
        names = {span.name for span in tracer.spans()}
        assert {"model.load", "workbench.run", "ctl.check",
                "symbolic.compile", "symbolic.closure",
                "symbolic.fixpoint",
                "symbolic.fixpoint.iteration"} <= names
        run = next(s for s in tracer.spans()
                   if s.name == "workbench.run")
        assert run.attrs["model"] == "app"
        assert run.attrs["status"] == "ok"
        check = next(s for s in run.walk() if s.name == "ctl.check")
        assert check.attrs["verdict"] == "HOLDS"

    def test_explicit_explore_emits_bfs_span(self, tracer):
        workbench = make_workbench(["app"])
        workbench.run(ExploreSpec("app", max_states=200))
        bfs = next(s for s in tracer.spans()
                   if s.name == "explore.bfs")
        assert bfs.attrs["states"] > 0
        assert bfs.attrs["truncated"] in (True, False)

    def test_engine_counters_accumulate(self, tracer):
        before = {name: GLOBAL.counter(name)
                  for name in ("symbolic.compiles", "symbolic.images",
                               "model.loads", "explore.spaces")}
        workbench = make_workbench(["app"])
        workbench.run(CheckSpec("app", "AG !deadlock",
                                strategy="symbolic"))
        workbench.run(ExploreSpec("app", max_states=100))
        assert GLOBAL.counter("model.loads") == before["model.loads"] + 1
        assert GLOBAL.counter("symbolic.compiles") == \
            before["symbolic.compiles"] + 1
        assert GLOBAL.counter("symbolic.images") > \
            before["symbolic.images"]
        assert GLOBAL.counter("explore.spaces") == \
            before["explore.spaces"] + 1

    def test_forced_reorder_is_traced_and_counted(self, tracer):
        from repro.boolalg import And, Bdd, Or, Var

        before_runs = GLOBAL.counter("bdd.reorders")
        bdd = Bdd(order=[f"x{i}" for i in range(8)])
        function = Or(*(And(Var(f"x{i}"), Var(f"x{(i + 3) % 8}"))
                        for i in range(8)))
        root = bdd.from_expr(function)
        bdd.reorder(roots=[root])
        assert GLOBAL.counter("bdd.reorders") == before_runs + 1
        span = next(s for s in tracer.spans()
                    if s.name == "bdd.reorder")
        assert span.attrs["auto"] is False
        assert span.attrs["sifted"] >= 1
        assert "bdd.reorder_s" in GLOBAL.snapshot()["latency"]


class TestThreadBackend:
    def test_eight_thread_run_many_nests_every_group(self, tracer):
        names = [f"m{i}" for i in range(8)]
        workbench = make_workbench(names)
        specs = [SimulateSpec(name, steps=4) for name in names]
        results = workbench.run_many(specs, backend="thread", workers=8)
        assert [r.status for r in results] == ["ok"] * 8
        [root] = [r for r in tracer.roots
                  if r.name == "workbench.run_many"]
        assert root.attrs["backend"] == "thread"
        groups = [c for c in root.children if c.name == "farm.group"]
        assert len(groups) == 8
        assert {g.attrs["model"] for g in groups} == set(names)
        for group in groups:
            assert [c.name for c in group.children] == ["workbench.run"]


class TestProcessBackend:
    def test_worker_spans_ship_back_position_stable(self, tracer):
        workbench = make_workbench(["wa", "wb"])
        specs = [CheckSpec("wa", "AG !deadlock", max_states=300),
                 CheckSpec("wb", "EF deadlock", max_states=300)]
        results = workbench.run_many(specs, backend="process",
                                     workers=2)
        assert [r.status for r in results] == ["ok", "ok"]
        [root] = [r for r in tracer.roots
                  if r.name == "workbench.run_many"]
        workers = [c for c in root.children if c.name == "farm.worker"]
        # adopted in submission order — wa's group first — regardless
        # of which worker process finished first
        assert [w.attrs["model"] for w in workers] == ["wa", "wb"]
        for worker in workers:
            assert worker.pid != os.getpid()
            names = {span.name for span in worker.walk()}
            assert {"model.load", "workbench.run", "ctl.check"} <= names
            assert worker.start >= 0.0

    def test_untraced_process_run_ships_no_envelope(self):
        """With tracing off the worker returns the legacy pair list;
        results are identical either way."""
        assert not obs.tracing_active()
        workbench = make_workbench(["wa", "wb"])
        specs = [SimulateSpec("wa", steps=3), SimulateSpec("wb", steps=3)]
        serial = [r.to_json() for r in
                  workbench.run_many(specs, backend="serial")]
        process = [r.to_json() for r in
                   workbench.run_many(specs, backend="process",
                                      workers=2)]
        assert process == serial


@pytest.mark.parametrize("backend,workers", [("serial", 1),
                                             ("thread", 4),
                                             ("process", 2)])
def test_artifacts_identical_traced_or_not(backend, workers):
    """The out-of-band guarantee, per backend: the canonical result
    JSON of a batch is byte-identical with tracing on and off."""
    specs = [SimulateSpec("wa", steps=5),
             ExploreSpec("wa", max_states=200),
             CheckSpec("wb", "AG !deadlock", max_states=300,
                       witness=True)]

    def run_once():
        workbench = make_workbench(["wa", "wb"])
        return [r.to_json() for r in
                workbench.run_many(specs, backend=backend,
                                   workers=workers)]

    assert not obs.tracing_active()
    untraced = run_once()
    obs.enable_tracing()
    try:
        traced = run_once()
    finally:
        obs.disable_tracing()
    assert traced == untraced
