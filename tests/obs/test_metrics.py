"""The shared metrics registry and the one engine-snapshot API."""

import threading

from repro import obs
from repro.obs import GLOBAL, LatencyHistogram, MetricsRegistry
from repro.sdf import SdfBuilder, weave_sdf


def small_model(name="obsm"):
    builder = SdfBuilder(name)
    builder.agent("src")
    builder.agent("dst")
    builder.connect("src", "dst", capacity=2)
    model, _app = builder.build()
    return weave_sdf(model).execution_model


class TestRegistry:
    def test_counters_are_exact_under_concurrent_writers(self):
        registry = MetricsRegistry()
        threads = 8
        increments = 10_000

        def work():
            for _ in range(increments):
                registry.count("hot")

        workers = [threading.Thread(target=work) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert registry.counter("hot") == threads * increments

    def test_histograms_are_exact_under_concurrent_writers(self):
        registry = MetricsRegistry()

        def work():
            for index in range(1_000):
                registry.observe("lat", index * 1e-5)

        workers = [threading.Thread(target=work) for _ in range(8)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert registry.snapshot()["latency"]["lat"]["count"] == 8_000

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.count("runs", 3)
        registry.observe("run_s", 0.25)
        registry.register_gauge("queue_depth", lambda: 5)
        doc = registry.snapshot()
        assert set(doc) == {"uptime_s", "counters", "latency", "gauges"}
        assert doc["counters"] == {"runs": 3}
        assert doc["gauges"] == {"queue_depth": 5}
        latency = doc["latency"]["run_s"]
        assert latency["count"] == 1
        assert latency["max_s"] == 0.25

    def test_failing_gauge_never_breaks_the_snapshot(self):
        registry = MetricsRegistry()

        def bad():
            raise RuntimeError("probe offline")

        registry.register_gauge("bad", bad)
        assert registry.snapshot()["gauges"]["bad"] == \
            "error: probe offline"

    def test_reset_zeroes_history_but_keeps_gauges(self):
        registry = MetricsRegistry()
        registry.count("runs")
        registry.observe("run_s", 1.0)
        registry.register_gauge("depth", lambda: 1)
        registry.reset()
        doc = registry.snapshot()
        assert doc["counters"] == {"runs": 0}
        assert doc["latency"] == {}
        assert doc["gauges"] == {"depth": 1}

    def test_module_helpers_write_the_global_registry(self):
        before = GLOBAL.counter("obs.test.counter")
        obs.count("obs.test.counter", 2)
        assert GLOBAL.counter("obs.test.counter") == before + 2
        obs.observe("obs.test.latency", 0.001)
        assert GLOBAL.snapshot()["latency"]["obs.test.latency"][
            "count"] >= 1


class TestLatencyPercentiles:
    def test_percentiles_are_monotone(self):
        histogram = LatencyHistogram()
        for index in range(1, 101):
            histogram.record(index / 100.0)
        doc = histogram.snapshot()
        assert doc["count"] == 100
        assert doc["p50_s"] <= doc["p90_s"] <= doc["p99_s"] <= \
            doc["max_s"]

    def test_empty_histogram_has_no_percentiles(self):
        doc = LatencyHistogram().snapshot()
        assert doc == {"count": 0, "sum_s": 0.0, "max_s": 0.0}


class TestEngineSnapshot:
    def test_none_source_is_none(self):
        assert obs.engine_snapshot(None) is None

    def test_unmaterialized_model_is_none(self):
        """Summarizing a model whose kernel never ran must not allocate
        a kernel as a side effect."""
        model = small_model()
        model.clear_caches()
        assert obs.engine_snapshot(model) is None

    def test_every_engine_source_kind_dispatches(self):
        from repro.engine.symbolic import symbolic_reachable

        model = small_model()
        reachable = symbolic_reachable(model)
        by_reachable = obs.engine_snapshot(reachable)
        by_system = obs.engine_snapshot(reachable.system)
        assert by_reachable == by_system == reachable.system.telemetry()
        assert by_system["bdd_nodes"] > 0
        # kernel + model views agree with the kernel's own aggregate
        kernel = model.kernel
        kernel.transition_system(model)
        by_kernel = obs.engine_snapshot(kernel)
        by_model = obs.engine_snapshot(model)
        assert by_kernel == by_model == kernel.engine_telemetry()
