"""The tracer core: nesting, thread fan-out, adoption, the no-op mode."""

import contextvars
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import obs
from repro.obs import tracer as tracer_module


class TestNesting:
    def test_spans_nest_by_call_order(self, tracer):
        with obs.span("outer", kind="demo"):
            with obs.span("inner.a"):
                pass
            with obs.span("inner.b"):
                pass
        [root] = tracer.roots
        assert root.name == "outer"
        assert root.attrs == {"kind": "demo"}
        assert [child.name for child in root.children] == ["inner.a",
                                                           "inner.b"]

    def test_set_attaches_late_attributes(self, tracer):
        with obs.span("work") as span:
            span.set(states=42, verdict="HOLDS")
        [root] = tracer.roots
        assert root.attrs == {"states": 42, "verdict": "HOLDS"}

    def test_span_exits_and_attaches_on_exception(self, tracer):
        with pytest.raises(ValueError):
            with obs.span("outer"):
                with obs.span("inner"):
                    raise ValueError("boom")
        # both spans closed, correctly nested — and the contextvar is
        # reset, so the next span is a new root, not a child of "outer"
        [root] = tracer.roots
        assert root.name == "outer"
        assert [child.name for child in root.children] == ["inner"]
        assert root.end >= root.start
        with obs.span("after"):
            pass
        assert [r.name for r in tracer.roots] == ["outer", "after"]

    def test_durations_are_ordered(self, tracer):
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        [root] = tracer.roots
        [inner] = root.children
        assert 0.0 <= inner.duration <= root.duration

    def test_to_doc_roundtrip_preserves_the_tree(self, tracer):
        with obs.span("outer", model="m"):
            with obs.span("inner", depth=1):
                pass
        [doc] = tracer.to_docs()
        assert doc["name"] == "outer"
        assert doc["attrs"] == {"model": "m"}
        [child] = doc["children"]
        assert child["name"] == "inner"
        assert child["attrs"] == {"depth": 1}
        assert child["start"] >= doc["start"]


class TestThreadFanOut:
    def test_copied_contexts_parent_worker_spans(self, tracer):
        """The farm thread backend's pattern: submitting through
        ``contextvars.copy_context().run`` nests each worker-thread
        span under the span that was current at submission."""

        def work(index):
            with obs.span("worker", index=index):
                pass

        with obs.span("fanout"):
            pool = ThreadPoolExecutor(max_workers=8)
            try:
                futures = [
                    pool.submit(contextvars.copy_context().run, work, i)
                    for i in range(8)
                ]
                for future in futures:
                    future.result()
            finally:
                pool.shutdown(wait=True)
        [root] = tracer.roots
        assert root.name == "fanout"
        assert len(root.children) == 8
        assert {c.attrs["index"] for c in root.children} == set(range(8))

    def test_uncopied_threads_become_roots(self, tracer):
        """A bare thread does not inherit the submitter's context: its
        spans float as roots instead of corrupting the caller's tree."""
        with obs.span("main"):
            thread = threading.Thread(
                target=lambda: obs.span("floating").__enter__().__exit__(
                    None, None, None))
            thread.start()
            thread.join()
        names = sorted(root.name for root in tracer.roots)
        assert names == ["floating", "main"]
        [main] = [r for r in tracer.roots if r.name == "main"]
        assert main.children == []

    def test_concurrent_attach_loses_no_spans(self, tracer):
        """64 threads x 50 spans each: every attach lands."""

        def work():
            for index in range(50):
                with obs.span("hot", i=index):
                    pass

        threads = [threading.Thread(target=work) for _ in range(64)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sum(1 for _ in tracer.spans()) == 64 * 50


class TestAdoption:
    def _worker_docs(self):
        """Span trees the way a process worker ships them."""
        worker = tracer_module.Tracer()
        worker.pid = 4242
        with tracer_module.Span(worker, "farm.worker", {"runs": 2}):
            with tracer_module.Span(worker, "workbench.run", {}):
                pass
        return worker.to_docs()

    def test_adopt_rebases_times_and_overrides_pid(self, tracer):
        docs = self._worker_docs()
        with obs.span("merge"):
            [adopted] = tracer.adopt(docs, offset=10.0, pid=7)
        assert adopted.name == "farm.worker"
        assert adopted.pid == 7
        assert adopted.start >= 10.0
        [child] = adopted.children
        assert child.pid == 7
        assert child.start >= adopted.start
        # adopted under the span that was current at the adopt call
        [root] = tracer.roots
        assert root.name == "merge"
        assert root.children == [adopted]

    def test_adoption_order_is_position_stable(self, tracer):
        """Merging envelopes in submission order keeps the trace
        deterministic regardless of worker completion order."""
        first = self._worker_docs()
        second = self._worker_docs()
        second[0]["attrs"]["runs"] = 99
        with obs.span("merge"):
            tracer.adopt(first, offset=1.0)
            tracer.adopt(second, offset=2.0)
        [root] = tracer.roots
        assert [c.attrs["runs"] for c in root.children] == [2, 99]

    def test_adopt_without_current_span_creates_roots(self, tracer):
        tracer.adopt(self._worker_docs())
        assert [root.name for root in tracer.roots] == ["farm.worker"]


class TestDisabledMode:
    def test_span_is_the_shared_noop_singleton(self):
        assert not obs.tracing_active()
        first = obs.span("anything", big=object())
        second = obs.span("else")
        assert first is second
        with first as span:
            span.set(ignored=1)

    def test_disabled_mode_allocates_no_span(self, monkeypatch):
        """With no tracer installed, ``obs.span`` must never construct
        a Span — the constructor is patched to explode."""
        assert not obs.tracing_active()

        def explode(*args, **kwargs):
            raise AssertionError("Span allocated with tracing off")

        monkeypatch.setattr(tracer_module.Span, "__init__", explode)
        with obs.span("hot.path", expensive=0):
            pass

    def test_enable_disable_roundtrip(self):
        assert obs.current_tracer() is None
        installed = obs.enable_tracing()
        assert obs.tracing_active()
        assert obs.current_tracer() is installed
        assert obs.disable_tracing() is installed
        assert not obs.tracing_active()
        assert obs.disable_tracing() is None


class TestCapture:
    def test_capture_installs_and_uninstalls(self):
        assert not obs.tracing_active()
        with obs.capture() as tracer:
            assert obs.current_tracer() is tracer
            with obs.span("inside"):
                pass
        assert not obs.tracing_active()
        assert [root.name for root in tracer.roots] == ["inside"]

    def test_nested_capture_reuses_the_outer_tracer(self):
        """``repro profile`` wrapping ``--trace``: the inner capture
        must not steal or tear down the outer tracer."""
        with obs.capture() as outer:
            with obs.capture() as inner:
                assert inner is outer
                with obs.span("shared"):
                    pass
            assert obs.current_tracer() is outer  # still installed
        assert not obs.tracing_active()
        assert [root.name for root in outer.roots] == ["shared"]
