"""Tracing isolation for the obs tests.

The tracer is a process-global switch, so every test in this package
runs with the ambient tracer parked (whatever the surrounding session
installed) and restored afterwards — a test that wants tracing installs
its own via the ``tracer`` fixture.
"""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _isolated_tracing():
    previous = obs.disable_tracing()
    try:
        yield
    finally:
        obs.disable_tracing()
        if previous is not None:
            obs.enable_tracing(previous)


@pytest.fixture()
def tracer():
    """A fresh installed tracer, uninstalled after the test."""
    installed = obs.enable_tracing()
    try:
        yield installed
    finally:
        obs.disable_tracing()
