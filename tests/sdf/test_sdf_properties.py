"""Property-based tests for the SDF stack (hypothesis).

Invariants:

* the woven PlaceConstraint keeps 0 <= tokens <= capacity under random
  scheduling for arbitrary rate/capacity/delay configurations, and its
  ``size`` variable tracks exact token accounting;
* the repetition vector solves the balance equations for random
  consistent graphs (constructed from a random repetition vector);
* random schedules of the MoCCML engine replay on the token baseline.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.engine import RandomPolicy, Simulator
from repro.moccml.semantics import AutomatonRuntime
from repro.sdf import (
    SdfBuilder,
    TokenSimulator,
    build_execution_model,
    repetition_vector,
    topology_matrix,
)
from repro.sdf.mocc import sdf_library

place_configs = st.tuples(
    st.integers(min_value=1, max_value=3),   # push
    st.integers(min_value=1, max_value=3),   # pop
    st.integers(min_value=1, max_value=6),   # capacity
    st.integers(min_value=0, max_value=3),   # delay
).filter(lambda cfg: cfg[3] <= cfg[2])


@settings(max_examples=60, deadline=None)
@given(place_configs, st.lists(st.booleans(), max_size=25))
def test_place_size_tracks_token_accounting(config, choices):
    """Drive the Fig. 3 automaton with random feasible steps; its size
    variable must follow exact token accounting and stay in bounds."""
    push, pop, capacity, delay = config
    definition = sdf_library("default").definition_for("PlaceConstraint")
    runtime = AutomatonRuntime(definition, {
        "write": "w", "read": "r", "pushRate": push, "popRate": pop,
        "itsDelay": delay, "itsCapacity": capacity}, label="place")
    tokens = delay
    for wants_write in choices:
        can_write = tokens + push <= capacity
        can_read = tokens >= pop
        if wants_write and can_write:
            step = frozenset({"w"})
            tokens += push
        elif can_read:
            step = frozenset({"r"})
            tokens -= pop
        elif can_write:
            step = frozenset({"w"})
            tokens += push
        else:
            step = frozenset()
        runtime.advance(step)
        assert runtime.variables["size"] == tokens
        assert 0 <= tokens <= capacity


@st.composite
def consistent_graphs(draw):
    """A random consistent SDF chain/fork built from a target repetition
    vector: edge rates are derived as push = lcm/r_prod, pop = lcm/r_cons
    scaled, guaranteeing consistency by construction."""
    import math

    n_agents = draw(st.integers(min_value=2, max_value=5))
    repetitions = [draw(st.integers(min_value=1, max_value=4))
                   for _ in range(n_agents)]
    overall_gcd = math.gcd(*repetitions)
    repetitions = [value // overall_gcd for value in repetitions]

    builder = SdfBuilder("random")
    for index in range(n_agents):
        builder.agent(f"a{index}")
    edges = []
    for index in range(n_agents - 1):
        # rates satisfying r_i * push = r_{i+1} * pop exactly
        r_prod, r_cons = repetitions[index], repetitions[index + 1]
        g = math.gcd(r_prod, r_cons)
        push, pop = r_cons // g, r_prod // g
        capacity = push + pop + draw(st.integers(min_value=0, max_value=3))
        builder.connect(f"a{index}", f"a{index+1}", push=push, pop=pop,
                        capacity=capacity)
        edges.append((index, index + 1, push, pop))
    model, app = builder.build()
    return app, repetitions


@settings(max_examples=50, deadline=None)
@given(consistent_graphs())
def test_repetition_vector_solves_balance_equations(data):
    app, _expected = data
    repetition = repetition_vector(app)
    matrix, _places, agents = topology_matrix(app)
    vector = [repetition[name] for name in agents]
    for row in matrix:
        assert sum(r * v for r, v in zip(row, vector)) == 0
    # smallest positive solution: componentwise gcd is 1
    import math
    assert math.gcd(*vector) == 1


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=2 ** 31))
def test_random_engine_schedules_replay_on_baseline(seed):
    """Any schedule the MoCC admits is a legal token-level execution."""
    builder = SdfBuilder("fork")
    for name in ("src", "up", "down", "sink"):
        builder.agent(name)
    builder.connect("src", "up", push=1, pop=1, capacity=2)
    builder.connect("src", "down", push=2, pop=1, capacity=3)
    builder.connect("up", "sink", push=1, pop=1, capacity=2)
    builder.connect("down", "sink", push=1, pop=2, capacity=3)
    model, app = builder.build()
    result = build_execution_model(model)
    simulation = Simulator(result.execution_model,
                           RandomPolicy(seed=seed)).run(20)
    baseline = TokenSimulator(app)
    for step in simulation.trace:
        fired = frozenset(name.split(".")[0] for name in step
                          if name.endswith(".start"))
        if fired:
            baseline.fire_set(fired)
    for place in baseline.places:
        assert 0 <= baseline.tokens[place.name] <= place.capacity
