"""Tests for classic SDF theory: topology matrix, repetition vector, PASS."""

import pytest

from repro.errors import InconsistentGraphError
from repro.sdf import SdfBuilder, analyze, pass_schedule, repetition_vector, topology_matrix
from repro.sdf.analysis import buffer_bounds_of_schedule


def chain(rates, capacities=None, delays=None, cycles=None):
    """Build a chain a0 -> a1 -> ... with (push, pop) per hop."""
    builder = SdfBuilder("chain")
    n = len(rates) + 1
    for i in range(n):
        builder.agent(f"a{i}", cycles=(cycles or [0] * n)[i])
    for i, (push, pop) in enumerate(rates):
        builder.connect(
            f"a{i}", f"a{i+1}", push=push, pop=pop,
            capacity=None if capacities is None else capacities[i],
            delay=0 if delays is None else delays[i])
    return builder.build()


class TestTopologyMatrix:
    def test_shape_and_entries(self):
        _model, app = chain([(1, 2), (3, 1)])
        matrix, places, agents = topology_matrix(app)
        assert agents == ["a0", "a1", "a2"]
        assert len(matrix) == 2
        assert matrix[0] == [1, -2, 0]
        assert matrix[1] == [0, 3, -1]

    def test_balance_equation_holds(self):
        _model, app = chain([(1, 2), (3, 1)])
        matrix, _places, agents = topology_matrix(app)
        repetition = repetition_vector(app)
        vector = [repetition[name] for name in agents]
        for row in matrix:
            assert sum(r * v for r, v in zip(row, vector)) == 0


class TestRepetitionVector:
    def test_homogeneous(self):
        _model, app = chain([(1, 1), (1, 1)])
        assert repetition_vector(app) == {"a0": 1, "a1": 1, "a2": 1}

    def test_multirate(self):
        _model, app = chain([(1, 2), (3, 1)])
        # a0 fires 2, a1 fires 1, a2 fires 3
        assert repetition_vector(app) == {"a0": 2, "a1": 1, "a2": 3}

    def test_classic_lee_messerschmitt_example(self):
        # triangle with rates chosen to be consistent
        builder = SdfBuilder("triangle")
        for name in ("x", "y", "z"):
            builder.agent(name)
        builder.connect("x", "y", push=2, pop=1, capacity=8)
        builder.connect("y", "z", push=1, pop=2, capacity=8)
        builder.connect("x", "z", push=1, pop=1, capacity=8, delay=2)
        _model, app = builder.build()
        assert repetition_vector(app) == {"x": 1, "y": 2, "z": 1}

    def test_inconsistent_graph_detected(self):
        builder = SdfBuilder("bad")
        for name in ("x", "y"):
            builder.agent(name)
        builder.connect("x", "y", push=1, pop=1)
        builder.connect("y", "x", push=2, pop=1)
        _model, app = builder.build()
        with pytest.raises(InconsistentGraphError):
            repetition_vector(app)

    def test_self_loop_consistent(self):
        builder = SdfBuilder("loop")
        builder.agent("a")
        builder.connect("a", "a", push=2, pop=2, delay=2)
        _model, app = builder.build()
        assert repetition_vector(app) == {"a": 1}

    def test_self_loop_inconsistent(self):
        builder = SdfBuilder("loop")
        builder.agent("a")
        builder.connect("a", "a", push=2, pop=1)
        _model, app = builder.build()
        with pytest.raises(InconsistentGraphError):
            repetition_vector(app)

    def test_disconnected_components_normalized(self):
        builder = SdfBuilder("two-islands")
        for name in ("a", "b", "c", "d"):
            builder.agent(name)
        builder.connect("a", "b", push=1, pop=2)
        builder.connect("c", "d", push=1, pop=3)
        _model, app = builder.build()
        assert repetition_vector(app) == {"a": 2, "b": 1, "c": 3, "d": 1}


class TestPass:
    def test_schedule_counts_match_repetition(self):
        _model, app = chain([(1, 2), (3, 1)])
        repetition = repetition_vector(app)
        schedule = pass_schedule(app)
        assert schedule is not None
        for agent, count in repetition.items():
            assert schedule.count(agent) == count

    def test_deadlock_without_initial_tokens(self):
        builder = SdfBuilder("cycle")
        builder.agent("a")
        builder.agent("b")
        builder.connect("a", "b", push=1, pop=1)
        builder.connect("b", "a", push=1, pop=1)  # no delay: deadlock
        _model, app = builder.build()
        assert pass_schedule(app) is None

    def test_cycle_with_delay_schedules(self):
        builder = SdfBuilder("cycle")
        builder.agent("a")
        builder.agent("b")
        builder.connect("a", "b", push=1, pop=1)
        builder.connect("b", "a", push=1, pop=1, delay=1)
        _model, app = builder.build()
        schedule = pass_schedule(app)
        assert schedule == ["a", "b"] or schedule == ["b", "a"]

    def test_bounded_schedule_respects_capacity(self):
        _model, app = chain([(2, 1)], capacities=[2])
        schedule = pass_schedule(app, bounded=True)
        assert schedule is not None
        bounds = buffer_bounds_of_schedule(app, schedule)
        for place_name, bound in bounds.items():
            assert bound <= 2

    def test_bounded_deadlock_when_capacity_too_small(self):
        _model, app = chain([(3, 1)], capacities=[3])
        # a0 pushes 3 then must push 3 more before a1 drains enough: with
        # capacity 3 the bounded scheduler still works (fire a1 thrice)
        assert pass_schedule(app, bounded=True) is not None
        _model, app = chain([(4, 3)], capacities=[4])
        # after one a0 firing, tokens=4=capacity; a1 pops 3 leaving 1;
        # second a0 firing would need 5 > 4 -> bounded deadlock
        assert pass_schedule(app, bounded=True) is None


class TestAnalyze:
    def test_full_report(self):
        _model, app = chain([(1, 2), (3, 1)], capacities=[4, 6])
        info = analyze(app)
        assert info.consistent
        assert info.deadlock_free
        assert info.iteration_length == 6
        assert set(info.buffer_bounds) == {"a0_a1", "a1_a2"}

    def test_inconsistent_report(self):
        builder = SdfBuilder("bad")
        builder.agent("x")
        builder.agent("y")
        builder.connect("x", "y", push=1, pop=1)
        builder.connect("y", "x", push=2, pop=1)
        _model, app = builder.build()
        info = analyze(app)
        assert not info.consistent
        assert info.repetition == {}
        assert not info.deadlock_free
