"""Tests for looped schedules and buffer sizing."""

import pytest

from repro.sdf import SdfBuilder, pass_schedule, repetition_vector
from repro.sdf.schedules import (
    apply_capacities,
    expand_looped,
    loop_notation,
    minimal_buffer_capacities,
    render_looped,
    single_appearance_schedule,
)


def multirate_chain():
    builder = SdfBuilder("chain")
    builder.agent("a")
    builder.agent("b")
    builder.agent("c")
    builder.connect("a", "b", push=2, pop=1, capacity=8)
    builder.connect("b", "c", push=1, pop=2, capacity=8)
    return builder.build()


class TestLoopedSchedules:
    def test_single_appearance_on_chain(self):
        _model, app = multirate_chain()
        schedule = single_appearance_schedule(app)
        assert schedule == [(1, "a"), (2, "b"), (1, "c")]
        assert render_looped(schedule) == "a (2 b) c"

    def test_expansion_is_admissible(self):
        _model, app = multirate_chain()
        schedule = single_appearance_schedule(app)
        flat = expand_looped(schedule)
        from repro.sdf.analysis import buffer_bounds_of_schedule
        bounds = buffer_bounds_of_schedule(app, flat)  # raises if invalid
        assert all(value >= 0 for value in bounds.values())

    def test_expansion_matches_repetition_vector(self):
        _model, app = multirate_chain()
        flat = expand_looped(single_appearance_schedule(app))
        repetition = repetition_vector(app)
        for agent, count in repetition.items():
            assert flat.count(agent) == count

    def test_cycle_without_tokens_has_no_sas(self):
        builder = SdfBuilder("ring")
        builder.agent("x")
        builder.agent("y")
        builder.connect("x", "y", push=1, pop=1)
        builder.connect("y", "x", push=1, pop=1)
        _model, app = builder.build()
        assert single_appearance_schedule(app) is None

    def test_cycle_with_full_delay_clusters(self):
        builder = SdfBuilder("ring")
        builder.agent("x")
        builder.agent("y")
        builder.connect("x", "y", push=1, pop=1, capacity=2)
        builder.connect("y", "x", push=1, pop=1, capacity=2, delay=1)
        _model, app = builder.build()
        schedule = single_appearance_schedule(app)
        assert schedule == [(1, "x"), (1, "y")]

    def test_loop_notation_run_length(self):
        assert loop_notation(["a", "b", "b", "c"]) == "a (2 b) c"
        assert loop_notation(["a", "a", "a"]) == "(3 a)"
        assert loop_notation([]) == ""


class TestBufferSizing:
    def test_minimal_capacities_of_chain(self):
        _model, app = multirate_chain()
        capacities = minimal_buffer_capacities(app)
        assert capacities is not None
        # a pushes 2 per firing, b pops 1: 2 tokens must fit
        assert capacities["a_b"] == 2
        assert capacities["b_c"] == 2
        # originals restored
        for place in app.get("places"):
            assert place.get("capacity") == 8

    def test_minimized_capacities_still_schedule(self):
        _model, app = multirate_chain()
        capacities = minimal_buffer_capacities(app)
        apply_capacities(app, capacities)
        assert pass_schedule(app, bounded=True) is not None

    def test_delay_lower_bound(self):
        builder = SdfBuilder("delayed")
        builder.agent("p")
        builder.agent("q")
        builder.connect("p", "q", capacity=8, delay=3)
        _model, app = builder.build()
        capacities = minimal_buffer_capacities(app)
        assert capacities["p_q"] >= 3

    def test_unschedulable_returns_none(self):
        builder = SdfBuilder("dead")
        builder.agent("x")
        builder.agent("y")
        builder.connect("x", "y", push=1, pop=1, capacity=4)
        builder.connect("y", "x", push=1, pop=1, capacity=4)  # no delay
        _model, app = builder.build()
        assert minimal_buffer_capacities(app) is None

    def test_apply_capacities_requires_full_map(self):
        from repro.errors import SdfError
        _model, app = multirate_chain()
        with pytest.raises(SdfError):
            apply_capacities(app, {"a_b": 2})
