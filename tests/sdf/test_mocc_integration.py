"""Integration tests: the SDF MoCC reproduces SDF semantics (paper §III).

These are the test-suite versions of experiments E3 and E5: the woven
execution model's behaviour is cross-validated against the token-level
baseline simulator and against the repetition vector.
"""

import pytest

from repro.engine import AsapPolicy, RandomPolicy, Simulator, explore
from repro.moccml.validate import validate_library
from repro.sdf import (
    SdfBuilder,
    TokenSimulator,
    build_execution_model,
    repetition_vector,
    sdf_library,
)


def two_agent_model(push=1, pop=1, capacity=2, delay=0, cycles=(0, 0),
                    variant="default"):
    builder = SdfBuilder("duo")
    builder.agent("prod", cycles=cycles[0])
    builder.agent("cons", cycles=cycles[1])
    builder.connect("prod", "cons", push=push, pop=pop, capacity=capacity,
                    delay=delay, name="buf")
    model, app = builder.build()
    result = build_execution_model(model, place_variant=variant)
    return model, app, result


class TestLibrary:
    @pytest.mark.parametrize("variant", ["default", "strict", "multiport"])
    def test_library_valid(self, variant):
        library = sdf_library(variant)
        assert validate_library(library) == []

    def test_multiport_has_three_transitions(self):
        library = sdf_library("multiport")
        definition = library.definition_for("PlaceConstraint")
        assert len(definition.transitions) == 3


class TestN0Collapse:
    """Paper: with N = 0, read, start, stop and write are simultaneous."""

    def test_firing_is_one_simultaneous_step(self):
        _model, _app, result = two_agent_model()
        engine_model = result.execution_model
        steps = engine_model.acceptable_steps()
        # the only acceptable non-empty step fires prod atomically:
        # start+stop+write+read(of nothing)... cons cannot fire (no data)
        assert len(steps) == 1
        only = steps[0]
        assert only == frozenset(
            {"prod.start", "prod.stop", "buf.out.write"})

    def test_consumer_fires_after_producer(self):
        _model, _app, result = two_agent_model()
        engine_model = result.execution_model
        engine_model.advance(engine_model.acceptable_steps()[0])
        steps = engine_model.acceptable_steps()
        fired_events = set().union(*steps)
        assert "cons.start" in fired_events
        assert "buf.in.read" in fired_events


class TestNCyclesExecution:
    def test_execution_spans_cycles_steps(self):
        _model, _app, result = two_agent_model(cycles=(2, 0), capacity=2)
        engine_model = result.execution_model
        simulation = Simulator(engine_model, AsapPolicy()).run(3)
        trace = simulation.trace
        # step 0: prod.start (with read of nothing); steps 1..2: exec,
        # the 2nd exec coincides with stop+write
        assert "prod.start" in trace[0]
        assert "prod.stop" not in trace[0]
        assert "prod.isExecuting" in trace[1]
        assert "prod.stop" in trace[2]
        assert "buf.out.write" in trace[2]

    def test_exec_never_outside_start_stop(self):
        _model, _app, result = two_agent_model(cycles=(3, 0), capacity=4)
        engine_model = result.execution_model
        simulation = Simulator(engine_model, RandomPolicy(seed=3)).run(40)
        running = False
        for step in simulation.trace:
            if "prod.isExecuting" in step:
                assert running or "prod.start" not in step
                assert running  # exec strictly after start in our reading
            if "prod.start" in step:
                running = True
            if "prod.stop" in step:
                running = False


class TestPlaceSafety:
    @pytest.mark.parametrize("variant", ["default", "multiport"])
    @pytest.mark.parametrize("push,pop,capacity,delay", [
        (1, 1, 1, 0), (1, 1, 3, 1), (2, 1, 4, 0), (1, 3, 3, 0), (2, 3, 6, 1),
    ])
    def test_token_count_always_within_bounds(self, push, pop, capacity,
                                              delay, variant):
        _model, _app, result = two_agent_model(
            push=push, pop=pop, capacity=capacity, delay=delay,
            variant=variant)
        engine_model = result.execution_model
        simulation = Simulator(engine_model, RandomPolicy(seed=11)).run(30)
        assert simulation.steps_run > 0
        place_rt = next(c for c in engine_model.constraints
                        if "PlaceLimitation" in c.label)
        size = place_rt.variables["size"]
        assert 0 <= size <= capacity

    def test_full_buffer_blocks_writer(self):
        _model, _app, result = two_agent_model(capacity=1)
        engine_model = result.execution_model
        engine_model.advance(engine_model.acceptable_steps()[0])
        # buffer full: prod cannot fire again until cons reads
        for step in engine_model.acceptable_steps():
            assert "buf.out.write" not in step or "buf.in.read" in step


class TestCrossValidationWithBaseline:
    """Every engine step must be a firing set the token simulator accepts."""

    @pytest.mark.parametrize("variant", ["default", "multiport"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_step_by_step_agreement(self, variant, seed):
        builder = SdfBuilder("tri")
        builder.agent("src")
        builder.agent("mid")
        builder.agent("snk")
        builder.connect("src", "mid", push=2, pop=1, capacity=4, name="p0")
        builder.connect("mid", "snk", push=1, pop=2, capacity=4, name="p1")
        model, app = builder.build()
        result = build_execution_model(model, place_variant=variant)
        engine_model = result.execution_model
        simulation = Simulator(engine_model, RandomPolicy(seed=seed)).run(25)

        tokens = TokenSimulator(app, multiport=(variant == "multiport"))
        for step in simulation.trace:
            fired = frozenset(
                name.split(".")[0] for name in step if name.endswith(".start"))
            if fired:
                tokens.fire_set(fired)  # raises if not a legal firing set
        for place_info in tokens.places:
            assert 0 <= tokens.tokens[place_info.name] \
                <= place_info.capacity

    def test_firing_counts_follow_repetition_vector(self):
        builder = SdfBuilder("multirate")
        builder.agent("a")
        builder.agent("b")
        builder.agent("c")
        builder.connect("a", "b", push=2, pop=1, capacity=4)
        builder.connect("b", "c", push=1, pop=2, capacity=4)
        model, app = builder.build()
        repetition = repetition_vector(app)  # a:1, b:2, c:1
        result = build_execution_model(model)
        simulation = Simulator(result.execution_model, AsapPolicy()).run(60)
        counts = {name: simulation.trace.count(f"{name}.start")
                  for name in repetition}
        # over a long ASAP run the firing ratios approach the repetition
        # vector (up to boundary effects of one iteration)
        iterations = min(counts[name] // repetition[name]
                         for name in repetition)
        assert iterations >= 5
        for name in repetition:
            assert abs(counts[name] - iterations * repetition[name]) \
                <= 2 * repetition[name]


class TestVariants:
    def test_multiport_allows_simultaneous_read_write(self):
        _model, _app, result = two_agent_model(capacity=1,
                                               variant="multiport")
        engine_model = result.execution_model
        engine_model.advance(max(engine_model.acceptable_steps(), key=len))
        # buffer full (capacity 1): with multiport, prod and cons can now
        # fire together (write and read the same place in one step)
        steps = engine_model.acceptable_steps()
        assert any("buf.out.write" in step and "buf.in.read" in step
                   for step in steps)

    def test_default_forbids_simultaneous_read_write(self):
        _model, _app, result = two_agent_model(capacity=2)
        engine_model = result.execution_model
        engine_model.advance(max(engine_model.acceptable_steps(), key=len))
        for step in engine_model.acceptable_steps():
            assert not ("buf.out.write" in step and "buf.in.read" in step)

    def test_strict_variant_wastes_capacity(self):
        # Fig. 3 verbatim: 'size < itsCapacity - pushRate' wastes one
        # write slot compared to the prose reading (E1 shows this)
        _model, _app, default_result = two_agent_model(capacity=2)
        _model2, _app2, strict_result = two_agent_model(capacity=2,
                                                        variant="strict")
        default_space = explore(default_result.execution_model)
        strict_space = explore(strict_result.execution_model)
        assert strict_space.n_states < default_space.n_states


class TestExhaustiveExploration:
    def test_statespace_of_homogeneous_pipeline(self):
        _model, _app, result = two_agent_model(capacity=2)
        space = explore(result.execution_model)
        assert space.is_deadlock_free()
        assert not space.truncated
        # the buffer level cycles through 0,1,2 with prod/cons firings
        assert space.n_states >= 3

    def test_undersized_place_deadlocks(self):
        # capacity smaller than push: writer can never fire
        builder = SdfBuilder("stuck")
        builder.agent("p")
        builder.agent("c")
        builder.connect("p", "c", push=3, pop=1, capacity=2)
        model, _app = builder.build()
        result = build_execution_model(model)
        space = explore(result.execution_model)
        assert not space.is_deadlock_free()
