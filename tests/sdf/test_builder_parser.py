"""Tests for SigPML model construction (builder, parser, validation)."""

import pytest

from repro.errors import ParseError, SdfError
from repro.kernel.validation import check_conformance
from repro.sdf import SdfBuilder, check_application, parse_sigpml


class TestBuilder:
    def test_simple_pipeline(self):
        builder = SdfBuilder("pipe")
        builder.agent("a")
        builder.agent("b", cycles=3)
        place = builder.connect("a", "b", push=2, pop=3, capacity=6, delay=1)
        model, app = builder.build()
        assert [agent.name for agent in app.get("agents")] == ["a", "b"]
        assert place.get("capacity") == 6
        assert place.get("delay") == 1
        assert place.get("outputPort").get("rate") == 2
        assert place.get("inputPort").get("rate") == 3
        assert check_conformance(model) == []
        assert check_application(app) == []

    def test_default_capacity_allows_progress(self):
        builder = SdfBuilder()
        builder.agent("a")
        builder.agent("b")
        place = builder.connect("a", "b", push=2, pop=3)
        assert place.get("capacity") >= 3

    def test_duplicate_agent_rejected(self):
        builder = SdfBuilder()
        builder.agent("a")
        with pytest.raises(SdfError):
            builder.agent("a")

    def test_unknown_agent_rejected(self):
        builder = SdfBuilder()
        builder.agent("a")
        with pytest.raises(SdfError):
            builder.connect("a", "ghost")

    def test_bad_rates_rejected(self):
        builder = SdfBuilder()
        builder.agent("a")
        builder.agent("b")
        with pytest.raises(SdfError):
            builder.connect("a", "b", push=0)
        with pytest.raises(SdfError):
            builder.connect("a", "b", delay=-1)

    def test_parallel_places_get_fresh_names(self):
        builder = SdfBuilder()
        builder.agent("a")
        builder.agent("b")
        first = builder.connect("a", "b")
        second = builder.connect("a", "b")
        assert first.name != second.name

    def test_self_loop_allowed(self):
        builder = SdfBuilder()
        builder.agent("a")
        place = builder.connect("a", "a", push=1, pop=1, delay=1)
        _model, app = builder.build()
        assert check_application(app) == []
        assert place.get("outputPort").get("agent") is place.get(
            "inputPort").get("agent")


class TestValidation:
    def test_delay_exceeding_capacity(self):
        builder = SdfBuilder()
        builder.agent("a")
        builder.agent("b")
        builder.connect("a", "b", capacity=1, delay=1)
        builder.connect("a", "b", capacity=2, delay=3, name="bad")
        _model, app = builder.build()
        issues = check_application(app)
        assert any("bad" in issue and "exceed" in issue for issue in issues)

    def test_capacity_below_push(self):
        builder = SdfBuilder()
        builder.agent("a")
        builder.agent("b")
        builder.connect("a", "b", push=4, capacity=2)
        _model, app = builder.build()
        issues = check_application(app)
        assert any("never accommodate" in issue for issue in issues)


SIGPML_TEXT = """
// a small multirate chain
application spectrum {
  agent source
  agent fft cycles 4
  agent sink
  place source -> fft push 1 pop 2 capacity 4
  place fft -> sink push 1 pop 1 capacity 2 delay 1
}
"""


class TestParser:
    def test_parse_structure(self):
        model, app = parse_sigpml(SIGPML_TEXT)
        assert app.name == "spectrum"
        agents = {agent.name: agent for agent in app.get("agents")}
        assert set(agents) == {"source", "fft", "sink"}
        assert agents["fft"].get("cycles") == 4
        places = app.get("places")
        assert len(places) == 2
        assert places[0].get("inputPort").get("rate") == 2
        assert places[1].get("delay") == 1
        assert check_application(app) == []

    def test_defaults(self):
        model, app = parse_sigpml(
            "application a {\n agent x\n agent y\n place x -> y\n}\n")
        place = app.get("places")[0]
        assert place.get("outputPort").get("rate") == 1
        assert place.get("delay") == 0

    def test_errors(self):
        with pytest.raises(ParseError):
            parse_sigpml("")
        with pytest.raises(ParseError):
            parse_sigpml("application a {\n bogus line\n}\n")
        with pytest.raises(ParseError):
            parse_sigpml("application a {\n agent x\n")  # missing }
        with pytest.raises(ParseError):
            parse_sigpml(
                "application a {\n agent x\n agent y\n"
                " place x -> y warp 3\n}\n")
        with pytest.raises(ParseError):
            parse_sigpml(
                "application a {\n agent x\n agent y\n"
                " place x -> y push 1 push 2\n}\n")
