"""Corpus dedupe: clean cases are remembered, failures never are."""

import repro
from repro.farm import ArtifactStore
from repro.fuzz import build_case, case_key
from repro.fuzz.corpus import Corpus
from repro.fuzz.runner import run_round


def test_case_key_is_stable_and_sensitive():
    case, handle = build_case(42, 0)
    key = case_key(case, handle)
    assert key is not None and len(key) == 64
    assert case_key(case, handle) == key
    other, other_handle = build_case(42, 5)  # same frontend, new draw
    assert case_key(other, other_handle) != key


def test_case_key_depends_on_budget_and_properties():
    case, handle = build_case(42, 0)
    key = case_key(case, handle)
    from dataclasses import replace

    bigger = replace(case, max_states=case.max_states + 1)
    assert case_key(bigger, handle) != key
    reworded = replace(case, properties=["AG !deadlock"])
    assert case_key(reworded, handle) != key


def test_case_key_depends_on_engine_version(monkeypatch):
    case, handle = build_case(42, 0)
    before = case_key(case, handle)
    monkeypatch.setattr(repro, "__version__", "0.0.0-test")
    assert case_key(case, handle) != before


def test_corpus_round_trip(tmp_path):
    case, handle = build_case(42, 0)
    corpus = Corpus(ArtifactStore(tmp_path / "corpus"))
    key = case_key(case, handle)
    assert not corpus.seen(key)
    assert not corpus.seen(None)
    corpus.record(key, case, checks=7)
    assert corpus.seen(key)
    corpus.record(None, case, checks=7)  # keyless: silently skipped


def test_store_has_probe(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    fingerprint = "ab" + "0" * 62
    assert not store.has(fingerprint)
    store.put(fingerprint, {"anything": True})
    assert store.has(fingerprint)
    assert store.get(fingerprint) == {"anything": True}


def test_run_round_dedupes_clean_cases(tmp_path):
    store = str(tmp_path / "corpus")
    first = run_round(21, cases=3, store=store)
    assert first["ok"]
    assert first["deduped"] == 0
    second = run_round(21, cases=3, store=store)
    assert second["ok"]
    # the second round skips every case the first proved clean and
    # spends its budget on fresh indices instead
    assert second["deduped"] >= first["cases"]
    assert second["cases"] >= 3
