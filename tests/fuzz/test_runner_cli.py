"""Round driver and the ``repro fuzz`` CLI."""

import json

import pytest

import repro.engine.ctl as ctl
from repro.cli import main
from repro.fuzz import run_round
from repro.fuzz.runner import replay_document
from tests.fuzz.test_oracle import BUGGY_INDEX, BUGGY_SEED


def test_run_round_needs_a_stopping_rule():
    with pytest.raises(ValueError):
        run_round(1)
    with pytest.raises(ValueError):
        run_round(1, cases=2, frontends=("nope",))


def test_run_round_reports_per_frontend_counts():
    report = run_round(9, cases=5)
    assert report["ok"]
    assert report["cases"] >= 5
    assert sum(report["per_frontend"].values()) == report["cases"]
    assert set(report["per_frontend"]) == {
        "sigpml", "deployment", "pam", "ccsl", "moccml",
    }
    assert report["checks"] > 0
    assert report["generation"] >= 1


def test_run_round_is_worker_independent():
    serial = run_round(9, cases=5, workers=1)
    threaded = run_round(9, cases=5, workers=4)
    # same indices were generated and checked either way; only timing
    # fields may differ
    for key in ("seed", "ok", "failures", "generation"):
        assert serial[key] == threaded[key]


def test_run_round_restricts_frontends():
    report = run_round(17, cases=2, frontends=("ccsl",))
    assert set(report["per_frontend"]) == {"ccsl"}
    assert report["per_frontend"]["ccsl"] == report["cases"]


def _break_truncation_guard(monkeypatch):
    def broken(space):
        checker = ctl._ExplicitChecker(space)
        checker.frontier = frozenset()
        checker.must_dead = checker.may_dead
        return checker

    monkeypatch.setattr(ctl, "_explicit_checker", broken)


def test_cli_fuzz_round_and_replay(tmp_path, monkeypatch, capsys):
    # a healthy bounded round passes
    assert main(["fuzz", "--seed", "9", "--cases", "3", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["kind"] == "fuzz"
    assert report["ok"] is True
    assert report["version"]

    # with the soundness bug injected, the same CLI goes red and emits
    # a self-contained repro document
    _break_truncation_guard(monkeypatch)
    out = tmp_path / "artifacts"
    code = main([
        "fuzz", "--seed", str(BUGGY_SEED),
        "--cases", str(BUGGY_INDEX + 1), "--minimize",
        "--out", str(out), "--json",
    ])
    assert code == 1
    report = json.loads(capsys.readouterr().out)
    assert report["ok"] is False
    assert report["failures"]
    docs = sorted(out.glob("fuzz-repro-*.json"))
    assert docs
    document = json.loads(docs[0].read_text())
    assert set(document) >= {"models", "runs", "fuzz"}

    # --replay reproduces the failure while the bug is present ...
    assert main(["fuzz", "--replay", str(docs[0]), "--json"]) == 1
    replay = json.loads(capsys.readouterr().out)
    assert replay["ok"] is False

    # ... and comes up clean once it is fixed
    monkeypatch.undo()
    assert main(["fuzz", "--replay", str(docs[0]), "--json"]) == 0


def test_cli_fuzz_requires_a_stopping_rule(capsys):
    assert main(["fuzz"]) == 2
    assert "needs --cases or --budget" in capsys.readouterr().err


def test_replay_document_rejects_multi_model_docs():
    with pytest.raises(ValueError):
        replay_document({"models": {}, "runs": []})
