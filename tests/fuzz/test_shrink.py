"""Shrinker: minimized cases still fail the same way and never grow."""

import pytest

from repro.fuzz import FuzzCase, case_size, shrink_case
from repro.fuzz.generators import load_case_model
from repro.fuzz.oracle import CaseOutcome, FuzzFailure
from repro.fuzz.shrink import referenced_events


def _failure(case, kind="disagreement", prop=None):
    return FuzzFailure(
        kind=kind,
        seed=case.seed,
        index=case.index,
        frontend=case.frontend,
        prop=prop,
        detail="synthetic",
        repro={},
    )


def _fake_oracle(predicate, kind="disagreement", prop=None):
    """A stand-in ``check_case`` failing exactly when *predicate* holds."""

    def check_case(case, handle=None):
        outcome = CaseOutcome(case=case)
        if predicate(case):
            outcome.failures.append(_failure(case, kind=kind, prop=prop))
        return outcome

    return check_case


def _sigpml_case():
    structure = {
        "name": "shrinkme",
        "agents": [["a0", 2], ["a1", 0], ["a2", 1], ["a3", 0]],
        "places": [
            ["a0", "a1", 2, 1, 3, 1],
            ["a1", "a2", 1, 2, 3, 0],
            ["a2", "a3", 2, 2, 3, 0],
        ],
    }
    return FuzzCase(
        seed=0,
        index=0,
        frontend="sigpml",
        structure=structure,
        properties=["AG !deadlock", "EF occurs(a0.start)"],
        max_states=300,
    )


def test_shrink_sigpml_to_two_agents(monkeypatch):
    case = _sigpml_case()
    failure = _failure(case)
    predicate = lambda c: len(c.structure["agents"]) >= 2  # noqa: E731
    monkeypatch.setattr(
        "repro.fuzz.shrink.check_case", _fake_oracle(predicate)
    )
    small, small_failure, attempts = shrink_case(case, failure)
    assert attempts >= 1
    assert small_failure.kind == failure.kind
    assert len(small.structure["agents"]) == 2
    assert small.structure["places"] == []
    assert small.properties == []  # prop=None drops every property
    assert case_size(small) <= case_size(case)
    load_case_model(small)  # the minimized case still loads


def test_shrink_keeps_failing_property_and_its_events(monkeypatch):
    case = _sigpml_case()
    prop = "EF occurs(a2.start)"
    case.properties = ["AG !deadlock", prop]
    failure = _failure(case, prop=prop)
    predicate = lambda c: len(c.structure["agents"]) >= 1  # noqa: E731
    monkeypatch.setattr(
        "repro.fuzz.shrink.check_case",
        _fake_oracle(predicate, prop=prop),
    )
    small, small_failure, _attempts = shrink_case(case, failure)
    assert small.properties == [prop]
    assert small_failure.prop == prop
    # the event the kept property mentions survived the shrink
    handle = load_case_model(small)
    assert referenced_events([prop]) <= set(handle.execution_model.events)
    assert any(agent == "a2" for agent, _cycles in small.structure["agents"])


def test_shrink_ccsl_drops_constraints_and_events(monkeypatch):
    structure = {
        "name": "shrinkccsl",
        "events": ["e0", "e1", "e2", "e3"],
        "constraints": [
            ["Alternates", ["e0", "e1"]],
            ["BoundedPrecedes", ["e1", "e2", 3]],
            ["Deadline", ["e2", "e3", 2]],
        ],
    }
    case = FuzzCase(
        seed=0,
        index=0,
        frontend="ccsl",
        structure=structure,
        properties=["AG !deadlock"],
        max_states=2500,
    )
    failure = _failure(case)
    predicate = lambda c: len(c.structure["constraints"]) >= 1  # noqa: E731
    monkeypatch.setattr(
        "repro.fuzz.shrink.check_case", _fake_oracle(predicate)
    )
    small, _small_failure, _attempts = shrink_case(case, failure)
    assert len(small.structure["constraints"]) == 1
    # only the events the surviving constraint references remain
    _relation, args = small.structure["constraints"][0]
    assert set(small.structure["events"]) <= set(
        arg for arg in args if isinstance(arg, str)
    )
    assert case_size(small) < case_size(case)
    load_case_model(small)


def test_shrink_reduces_integer_parameters(monkeypatch):
    structure = {
        "name": "shrinkints",
        "events": ["e0", "e1"],
        "constraints": [["BoundedPrecedes", ["e0", "e1", 3]]],
    }
    case = FuzzCase(
        seed=0,
        index=0,
        frontend="ccsl",
        structure=structure,
        properties=[],
        max_states=2500,
    )
    failure = _failure(case)
    predicate = (  # noqa: E731
        lambda c: any(
            relation == "BoundedPrecedes"
            for relation, _args in c.structure["constraints"]
        )
    )
    monkeypatch.setattr(
        "repro.fuzz.shrink.check_case", _fake_oracle(predicate)
    )
    small, _small_failure, _attempts = shrink_case(case, failure)
    assert ["BoundedPrecedes", ["e0", "e1", 1]] in [
        [relation, list(args)]
        for relation, args in small.structure["constraints"]
    ]


def test_no_progress_returns_original():
    case = _sigpml_case()
    failure = _failure(case)
    # the real oracle: the case is clean, so nothing re-fails and the
    # shrinker hands back the original
    small, small_failure, attempts = shrink_case(
        case, failure, max_attempts=3
    )
    assert small is case
    assert small_failure is failure
    assert attempts == 3


def test_attempt_budget_is_respected(monkeypatch):
    case = _sigpml_case()
    failure = _failure(case)
    calls = []

    def count_and_fail(candidate, handle=None):
        calls.append(1)
        outcome = CaseOutcome(case=candidate)
        outcome.failures.append(_failure(candidate))
        return outcome

    monkeypatch.setattr("repro.fuzz.shrink.check_case", count_and_fail)
    shrink_case(case, failure, max_attempts=5)
    assert len(calls) <= 5


@pytest.mark.parametrize("frontend", ["sigpml", "deployment", "pam",
                                      "ccsl", "moccml"])
def test_reductions_yield_loadable_structures(frontend):
    from repro.fuzz import build_case, with_structure
    from repro.fuzz.shrink import _reductions

    case, _handle = build_case(99, {"sigpml": 0, "deployment": 1,
                                    "pam": 2, "ccsl": 3,
                                    "moccml": 4}[frontend])
    assert case.frontend == frontend
    for structure in _reductions(frontend, case.structure):
        load_case_model(with_structure(case, structure))
