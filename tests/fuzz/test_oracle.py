"""Oracle failure taxonomy: a broken engine can never pass silently."""

import repro.engine.ctl as ctl
from repro.fuzz import FuzzCase, build_case, check_case, replay_document
from repro.fuzz.oracle import ORACLE_CONFIGS

#: a generated case whose explicit exploration truncates — the kind of
#: case the truncation-soundness rule exists for (build_case(11, 10) is
#: deterministic for a fixed rng GENERATION: same structure, properties
#: and budget forever; re-pin when GENERATION bumps)
BUGGY_SEED, BUGGY_INDEX = 11, 10


def _simple_case(max_states=2500, properties=("EF deadlock",)):
    structure = {
        "name": "taxonomy",
        "agents": [["a0", 0], ["a1", 0]],
        "places": [["a0", "a1", 1, 1, 2, 0]],
    }
    return FuzzCase(
        seed=0,
        index=0,
        frontend="sigpml",
        structure=structure,
        properties=list(properties),
        max_states=max_states,
    )


def _break_truncation_guard(monkeypatch):
    """Revert the truncated-space UNKNOWN guard: pretend the frontier is
    fully explored, so the explicit backend claims definitive verdicts
    it cannot justify — the known soundness bug of the issue."""

    def broken(space):
        checker = ctl._ExplicitChecker(space)
        checker.frontier = frozenset()
        checker.must_dead = checker.may_dead
        return checker

    monkeypatch.setattr(ctl, "_explicit_checker", broken)


def test_healthy_engine_is_clean():
    outcome = check_case(_simple_case())
    assert outcome.ok, [f.detail for f in outcome.failures]
    assert outcome.checks > 0


def test_truncated_case_is_clean_when_engine_is_sound():
    case, handle = build_case(BUGGY_SEED, BUGGY_INDEX)
    assert case.max_states < 2500, "the pinned case must truncate"
    outcome = check_case(case, handle)
    assert outcome.ok, [f.detail for f in outcome.failures]


def test_broken_truncation_guard_is_a_disagreement(monkeypatch):
    _break_truncation_guard(monkeypatch)
    case, handle = build_case(BUGGY_SEED, BUGGY_INDEX)
    outcome = check_case(case, handle)
    assert not outcome.ok, "a soundness bug must never pass silently"
    kinds = {failure.kind for failure in outcome.failures}
    assert "disagreement" in kinds
    failure = next(
        f for f in outcome.failures if f.kind == "disagreement"
    )
    assert failure.repro is not None
    assert set(failure.repro) >= {"models", "runs", "fuzz"}
    assert len(failure.repro["runs"]) == len(ORACLE_CONFIGS)


def test_repro_doc_replays_the_disagreement(monkeypatch):
    _break_truncation_guard(monkeypatch)
    case, handle = build_case(BUGGY_SEED, BUGGY_INDEX)
    outcome = check_case(case, handle)
    doc = next(
        f for f in outcome.failures if f.kind == "disagreement"
    ).repro
    # with the bug still present the document reproduces the failure
    report = replay_document(doc)
    assert not report["ok"]
    assert any(
        failure["kind"] == "disagreement"
        for failure in report["failures"]
    )
    # with the bug fixed the same document comes up clean
    monkeypatch.undo()
    assert replay_document(doc)["ok"]


def test_engine_crash_is_a_crash_failure(monkeypatch):
    def explode(space):
        raise RuntimeError("synthetic checker crash")

    monkeypatch.setattr(ctl, "_explicit_checker", explode)
    outcome = check_case(_simple_case())
    assert not outcome.ok
    assert any(failure.kind == "crash" for failure in outcome.failures)
    crash = next(f for f in outcome.failures if f.kind == "crash")
    assert "synthetic checker crash" in crash.detail


def test_unreplayable_witness_is_a_witness_failure(monkeypatch):
    """A backend reporting a fabricated trace must be caught by the
    replay rule, whatever its verdict says."""
    from repro.fuzz.generators import load_case_model

    real_check_space = ctl.check_space

    def lying(space, prop, witness=True):
        result = real_check_space(space, prop, witness=witness)
        if result.witness_steps is not None:
            result.witness_steps = [frozenset({"no.such.event"})]
        return result

    case = _simple_case()
    handle = load_case_model(case)
    # holds with a non-empty witness trace (a1 can only start after a0
    # produced a token, so the path is at least one step long)
    case.properties = ["EF occurs(a1.start)"]
    monkeypatch.setattr(ctl, "check_space", lying)
    outcome = check_case(case, handle)
    assert not outcome.ok
    kinds = {failure.kind for failure in outcome.failures}
    assert "witness" in kinds


def test_generated_cases_are_lint_clean():
    """build_case redraws until the static analyzer accepts, so every
    emitted model is ERROR-free across all five front-end lanes."""
    from repro.lint import lint_handle

    for index in range(5):  # one case per front-end lane
        _case, handle = build_case(20260808, index)
        report = lint_handle(handle)
        assert report.errors == [], [d.message for d in report.errors]


def test_defective_structure_is_a_static_failure():
    """A hand-built rate-inconsistent model (the kind build_case can no
    longer emit) trips the phase-0 static oracle."""
    case = FuzzCase(
        seed=0,
        index=0,
        frontend="sigpml",
        structure={
            "name": "statically_bad",
            "agents": [["a0", 0], ["a1", 0]],
            "places": [["a0", "a1", 2, 1, 4, 0],
                       ["a0", "a1", 1, 1, 4, 0]],
        },
        properties=[],
        max_states=300,
    )
    outcome = check_case(case)
    static = [f for f in outcome.failures if f.kind == "static"]
    assert static, [f.detail for f in outcome.failures]
    assert "SDF001" in static[0].detail
    # the repro document leads with a lint run, then the explorations
    runs = static[0].repro["runs"]
    assert runs[0]["kind"] == "lint"
    assert len(runs) == 1 + len(ORACLE_CONFIGS)


def test_lying_predictor_is_a_static_failure(monkeypatch):
    import repro.engine.encodability as encodability

    real_predict = encodability.predict

    def lying(model, **kwargs):
        report = real_predict(model, **kwargs)
        report.encodable = not report.encodable
        for verdict in report.verdicts:
            verdict.encodable = not verdict.encodable
        return report

    monkeypatch.setattr(encodability, "predict", lying)
    outcome = check_case(_simple_case())
    static = [f for f in outcome.failures if f.kind == "static"]
    assert static, [f.detail for f in outcome.failures]
    assert "predictor" in static[0].detail
