"""Seed determinism: a case is a pure function of (seed, index)."""

from concurrent.futures import ThreadPoolExecutor

from repro.engine.ctl import parse_property
from repro.farm import canonical_json
from repro.fuzz import FRONTENDS, build_case, generate_case

SEED = 1234
INDICES = range(10)


def _case_docs(seed, indices):
    return [canonical_json(generate_case(seed, i).to_doc()) for i in indices]


def test_same_seed_same_cases_byte_identical():
    assert _case_docs(SEED, INDICES) == _case_docs(SEED, INDICES)


def test_generation_is_order_independent():
    forward = _case_docs(SEED, INDICES)
    backward = _case_docs(SEED, reversed(INDICES))
    assert forward == list(reversed(backward))


def test_generation_is_worker_independent():
    serial = _case_docs(SEED, INDICES)
    with ThreadPoolExecutor(max_workers=4) as pool:
        threaded = list(
            pool.map(
                lambda i: canonical_json(generate_case(SEED, i).to_doc()),
                INDICES,
            )
        )
    assert serial == threaded


def test_round_robin_covers_all_five_frontends():
    frontends = [generate_case(SEED, i).frontend for i in range(5)]
    assert tuple(frontends) == FRONTENDS


def test_different_seeds_differ():
    assert _case_docs(SEED, INDICES) != _case_docs(SEED + 1, INDICES)


def test_rendering_is_stable_and_properties_parse():
    for index in range(5):
        case, handle = build_case(SEED, index)
        assert case.model_doc() == case.model_doc()
        assert case.properties, "every case carries properties"
        events = set(handle.execution_model.events)
        assert events, "every generated model has events"
        for text in case.properties:
            parse_property(text)  # must not raise


def test_properties_only_mention_model_events():
    from repro.fuzz.shrink import referenced_events

    for index in range(10):
        case, handle = build_case(SEED, index)
        assert referenced_events(case.properties) <= set(
            handle.execution_model.events
        )
