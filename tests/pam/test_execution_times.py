"""PAM with non-zero execution times (the §III-A N-cycles extension)."""

from repro.engine import AsapPolicy, Simulator
from repro.pam.experiments import build_configuration, concurrent_firings


class TestExecutionTimes:
    def test_fft_cycles_slow_the_chain(self):
        fast = build_configuration("infinite")
        slow = build_configuration("infinite", cycles={"fft": 2})
        fast_run = Simulator(fast, AsapPolicy()).run(60)
        slow_run = Simulator(slow, AsapPolicy()).run(60)
        assert slow_run.trace.count("logger.start") \
            < fast_run.trace.count("logger.start")
        assert slow_run.trace.count("fft.isExecuting") > 0

    def test_exec_overlaps_other_agents_when_unconstrained(self):
        # with infinite resources, other agents fire while the fft is
        # still executing — true pipelining
        model = build_configuration("infinite", cycles={"fft": 3})
        run = Simulator(model, AsapPolicy()).run(60)
        overlapping = [
            step for step in run.trace
            if "fft.isExecuting" in step and concurrent_firings(step) > 0]
        assert overlapping

    def test_mono_serializes_even_long_executions(self):
        model = build_configuration("mono", cycles={"fft": 2})
        run = Simulator(model, AsapPolicy()).run(80)
        busy = False
        for step in run.trace:
            if "fft.start" in step and "fft.stop" not in step:
                busy = True
            if busy:
                # nobody else may start while the fft occupies the DSP
                assert concurrent_firings(step) == 0 or \
                    "fft.start" in step
            if "fft.stop" in step:
                busy = False

    def test_speed_factor_stretches_execution(self):
        from repro.deployment import Allocation, Platform, deploy
        from repro.pam.application import build_pam_application, PAM_AGENTS
        model, app = build_pam_application(cycles={"fft": 1})
        platform = Platform("slowmono")
        platform.processor("dsp", speed_factor=3)
        result = deploy(model, app, platform,
                        Allocation({name: "dsp" for name in PAM_AGENTS}))
        assert result.effective_cycles["fft"] == 3
        assert result.effective_cycles["hydro"] == 0
