"""Tests for the PAM case study (application, platforms, smoke study)."""

import pytest

from repro.engine import AsapPolicy, Simulator, explore
from repro.pam import (
    PAM_AGENTS,
    allocation_for,
    build_pam_application,
    dual_processor_platform,
    mono_processor_platform,
    quad_processor_platform,
)
from repro.pam.experiments import (
    build_configuration,
    concurrent_firings,
    format_study,
    study_configuration,
)
from repro.sdf import analyze, check_application


class TestApplication:
    def test_structure(self):
        model, app = build_pam_application()
        assert [agent.name for agent in app.get("agents")] == list(PAM_AGENTS)
        assert len(app.get("places")) == 8
        assert check_application(app) == []

    def test_sdf_consistency(self):
        _model, app = build_pam_application()
        info = analyze(app)
        assert info.consistent
        # hydrophone is the multirate stage: 2 blocks per frame
        assert info.repetition["hydro"] == 2
        assert all(info.repetition[name] == 1 for name in PAM_AGENTS
                   if name != "hydro")
        assert info.deadlock_free

    def test_custom_cycles(self):
        _model, app = build_pam_application(cycles={"fft": 3})
        agents = {agent.name: agent for agent in app.get("agents")}
        assert agents["fft"].get("cycles") == 3
        assert agents["hydro"].get("cycles") == 0


class TestPlatforms:
    def test_allocations_are_total(self):
        for name, platform_factory in (
                ("mono", mono_processor_platform),
                ("dual", dual_processor_platform),
                ("quad", quad_processor_platform)):
            _model, app = build_pam_application()
            allocation = allocation_for(name)
            assert allocation.check(app, platform_factory()) == []

    def test_unknown_platform(self):
        with pytest.raises(KeyError):
            allocation_for("hexa")

    def test_quad_is_fully_connected(self):
        platform = quad_processor_platform()
        assert platform.latency("core0", "core3") == 2


class TestStudySmoke:
    """Bounded versions of experiment E7 (the full study runs in the
    benchmark harness)."""

    def test_infinite_configuration_builds(self):
        execution_model = build_configuration("infinite")
        assert len(execution_model.events) == 40
        simulation = Simulator(execution_model, AsapPolicy()).run(20)
        assert simulation.trace.count("logger.start") > 0

    def test_mono_never_fires_two_agents_together(self):
        execution_model = build_configuration("mono")
        simulation = Simulator(execution_model, AsapPolicy()).run(30)
        for step in simulation.trace:
            assert concurrent_firings(step) <= 1

    def test_infinite_fires_agents_in_parallel(self):
        execution_model = build_configuration("infinite")
        simulation = Simulator(execution_model, AsapPolicy()).run(30)
        assert max(concurrent_firings(step)
                   for step in simulation.trace) >= 2

    def test_deployment_reduces_scheduling_freedom(self):
        free = explore(build_configuration("infinite"), max_states=400)
        mono = explore(build_configuration("mono"), max_states=400)
        if not (free.truncated or mono.truncated):
            assert mono.n_transitions < free.n_transitions

    def test_study_row_fields(self):
        row = study_configuration("mono", max_states=2000, sim_steps=40)
        data = row.as_dict()
        assert data["deployment"] == "mono"
        assert data["states"] > 0
        assert data["max_concurrent_firings"] == 1
        table = format_study([row])
        assert "mono" in table

    def test_dual_between_mono_and_infinite(self):
        mono = study_configuration("mono", max_states=3000, sim_steps=60)
        dual = study_configuration("dual", max_states=3000, sim_steps=60)
        infinite = study_configuration("infinite", max_states=3000,
                                       sim_steps=60)
        assert (mono.max_concurrent_firings
                < dual.max_concurrent_firings
                <= infinite.max_concurrent_firings)
        assert (mono.logger_throughput
                < dual.logger_throughput
                < infinite.logger_throughput)
