"""Tests for integer expressions, guards, actions and their parser."""

import pytest

from repro.errors import GuardTypeError, ParseError
from repro.iexpr import (
    Add,
    Assign,
    Cmp,
    GAnd,
    GConst,
    GNot,
    GOr,
    IntConst,
    IntVar,
    Mul,
    Neg,
    Sub,
    parse_actions,
    parse_guard,
    parse_int_expr,
)


class TestIntExpr:
    def test_const_and_var(self):
        assert IntConst(5).evaluate({}) == 5
        assert IntVar("x").evaluate({"x": 3}) == 3

    def test_const_rejects_non_int(self):
        with pytest.raises(GuardTypeError):
            IntConst("five")
        with pytest.raises(GuardTypeError):
            IntConst(True)

    def test_unknown_name(self):
        with pytest.raises(GuardTypeError):
            IntVar("missing").evaluate({"x": 1})

    def test_arithmetic(self):
        env = {"a": 7, "b": 2}
        assert Add(IntVar("a"), IntVar("b")).evaluate(env) == 9
        assert Sub(IntVar("a"), IntVar("b")).evaluate(env) == 5
        assert Mul(IntVar("a"), IntVar("b")).evaluate(env) == 14
        assert Neg(IntVar("a")).evaluate(env) == -7

    def test_division_by_zero(self):
        expr = parse_int_expr("a / b")
        with pytest.raises(GuardTypeError):
            expr.evaluate({"a": 1, "b": 0})

    def test_names(self):
        expr = parse_int_expr("a + b * 2 - c")
        assert expr.names() == frozenset({"a", "b", "c"})


class TestGuards:
    def test_comparisons(self):
        env = {"size": 3, "cap": 5}
        assert Cmp("<", IntVar("size"), IntVar("cap")).evaluate(env)
        assert Cmp("<=", IntVar("size"), IntConst(3)).evaluate(env)
        assert not Cmp(">", IntVar("size"), IntVar("cap")).evaluate(env)
        assert Cmp("!=", IntVar("size"), IntVar("cap")).evaluate(env)
        assert Cmp("==", IntVar("size"), IntConst(3)).evaluate(env)

    def test_unknown_operator(self):
        with pytest.raises(GuardTypeError):
            Cmp("<>", IntVar("a"), IntVar("b"))

    def test_connectives(self):
        env = {"x": 1}
        true_guard = Cmp("==", IntVar("x"), IntConst(1))
        false_guard = Cmp("==", IntVar("x"), IntConst(2))
        assert GAnd(true_guard, true_guard).evaluate(env)
        assert not GAnd(true_guard, false_guard).evaluate(env)
        assert GOr(false_guard, true_guard).evaluate(env)
        assert GNot(false_guard).evaluate(env)
        assert GConst(True).evaluate(env)


class TestActions:
    def test_assignment_forms(self):
        env = {"size": 4, "pushRate": 2}
        Assign("size", "=", IntConst(9)).apply(env)
        assert env["size"] == 9
        Assign("size", "+=", IntVar("pushRate")).apply(env)
        assert env["size"] == 11
        Assign("size", "-=", IntConst(1)).apply(env)
        assert env["size"] == 10

    def test_assignment_to_unknown_variable(self):
        with pytest.raises(GuardTypeError):
            Assign("ghost", "=", IntConst(1)).apply({"size": 0})

    def test_unknown_operator(self):
        with pytest.raises(GuardTypeError):
            Assign("size", "*=", IntConst(2))


class TestParser:
    def test_precedence(self):
        expr = parse_int_expr("1 + 2 * 3")
        assert expr.evaluate({}) == 7
        expr = parse_int_expr("(1 + 2) * 3")
        assert expr.evaluate({}) == 9

    def test_unary_minus(self):
        assert parse_int_expr("-3 + 5").evaluate({}) == 2
        assert parse_int_expr("- (2 * 4)").evaluate({}) == -8

    def test_fig3_guards(self):
        # the guards of the paper's Fig. 3 automaton
        guard_write = parse_guard("size < itsCapacity - pushRate")
        guard_read = parse_guard("size > popRate")
        env = {"size": 2, "itsCapacity": 5, "pushRate": 2, "popRate": 1}
        assert guard_write.evaluate(env)
        assert guard_read.evaluate(env)
        env["size"] = 3
        assert not guard_write.evaluate(env)

    def test_guard_connectives(self):
        guard = parse_guard("size >= 1 and not (size == 3) or full == 1")
        assert guard.evaluate({"size": 2, "full": 0})
        assert not guard.evaluate({"size": 3, "full": 0})
        assert guard.evaluate({"size": 3, "full": 1})

    def test_parenthesized_comparison_backtracking(self):
        guard = parse_guard("(size + 1) > 2")
        assert guard.evaluate({"size": 2})
        assert not guard.evaluate({"size": 1})

    def test_fig3_actions(self):
        actions = parse_actions("size += pushRate")
        env = {"size": 1, "pushRate": 2}
        actions[0].apply(env)
        assert env["size"] == 3

    def test_action_list(self):
        actions = parse_actions("a = 1; b += a; c -= 2")
        env = {"a": 0, "b": 0, "c": 0}
        for action in actions:
            action.apply(env)
        assert (env["a"], env["b"], env["c"]) == (1, 1, -2)

    def test_parse_errors(self):
        with pytest.raises(ParseError):
            parse_int_expr("1 +")
        with pytest.raises(ParseError):
            parse_int_expr("1 ? 2")
        with pytest.raises(ParseError):
            parse_guard("size")
        with pytest.raises(ParseError):
            parse_guard("size < 1 extra")
        with pytest.raises(ParseError):
            parse_actions("size * 2")

    def test_dotted_names_allowed(self):
        # ECL argument expressions navigate model features
        expr = parse_int_expr("self.outputPort.rate + 1")
        assert expr.names() == frozenset({"self.outputPort.rate"})
