"""Cross-cutting tests: errors, names, PAM helpers, drawing edge cases."""

import pytest

from repro.errors import (
    MoccmlValidationError,
    ParseError,
    ReproError,
    SdfError,
)
from repro.kernel.names import check_identifier, is_identifier, qualify, split_qualified


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(SdfError, ReproError)
        assert issubclass(ParseError, ReproError)

    def test_parse_error_location(self):
        error = ParseError("bad token", line=3, column=7, filename="f.mml")
        assert "f.mml:3:7:" in str(error)
        assert error.line == 3

    def test_parse_error_partial_location(self):
        assert "5:" in str(ParseError("oops", line=5))
        assert str(ParseError("oops")) == "oops"

    def test_validation_error_truncates(self):
        issues = [f"issue {i}" for i in range(10)]
        error = MoccmlValidationError(issues)
        assert "..." in str(error)
        assert len(error.issues) == 10

    def test_validation_error_short_list(self):
        error = MoccmlValidationError(["one", "two"])
        assert str(error) == "one; two"


class TestNames:
    def test_is_identifier(self):
        assert is_identifier("abc_123")
        assert not is_identifier("1abc")
        assert not is_identifier("a-b")
        assert not is_identifier("")

    def test_check_identifier_passthrough(self):
        assert check_identifier("ok") == "ok"
        from repro.errors import MetamodelError
        with pytest.raises(MetamodelError):
            check_identifier("not ok", "thing")

    def test_qualify_and_split(self):
        assert qualify("a", "b", "c") == "a.b.c"
        assert qualify("", "b") == "b"
        assert split_qualified("a.b") == ["a", "b"]
        assert split_qualified("") == []


class TestPamHelpers:
    def test_unknown_configuration(self):
        from repro.pam.experiments import build_configuration
        with pytest.raises(KeyError):
            build_configuration("hexacore")

    def test_concurrent_firings_counts_starts(self):
        from repro.pam.experiments import concurrent_firings
        step = frozenset({"a.start", "b.start", "a.stop", "x.read"})
        assert concurrent_firings(step) == 2

    def test_row_as_dict_roundtrip(self):
        from repro.pam.experiments import DeploymentRow
        row = DeploymentRow(
            deployment="x", states=1, transitions=2, truncated=False,
            deadlock_free=True, max_concurrent_firings=1, max_parallelism=3,
            mean_branching=1.0, logger_throughput=0.1,
            asap_logger_throughput=0.1, asap_mean_parallelism=1.0)
        data = row.as_dict()
        assert data["states"] == 1
        assert data["max_concurrent_firings"] == 1


class TestDrawingEdgeCases:
    def test_statespace_dot_truncation_note(self):
        from repro.ccsl import PrecedesRuntime
        from repro.engine import ExecutionModel, explore
        from repro.moccml.draw import statespace_to_dot
        model = ExecutionModel(["a", "b"], [PrecedesRuntime("a", "b")])
        space = explore(model, max_states=30)
        dot = statespace_to_dot(space, max_nodes=5)
        assert "more states" in dot

    def test_automaton_dot_without_guard(self):
        from repro.moccml import (
            ConstraintAutomataDefinition,
            ConstraintDeclaration,
            Parameter,
            Transition,
            Trigger,
        )
        from repro.moccml.draw import automaton_to_dot
        declaration = ConstraintDeclaration("C", [Parameter("a", "event")])
        definition = ConstraintAutomataDefinition(
            "CDef", declaration, states=["S"], initial_state="S",
            transitions=[Transition("S", "S", Trigger(["a"], []))])
        dot = automaton_to_dot(definition)
        assert "{a}" in dot


class TestSdfValidationMore:
    def test_port_connected_twice(self):
        from repro.sdf import check_application
        from repro.sdf.metamodel import sigpml_metamodel
        mm = sigpml_metamodel()
        app = mm.instantiate("Application", name="bad")
        agent_a = mm.instantiate("Agent", name="a")
        agent_b = mm.instantiate("Agent", name="b")
        out_port = mm.instantiate("OutputPort", name="o", rate=1)
        out_port.set("agent", agent_a)
        agent_a.add("outputs", out_port)
        in_port = mm.instantiate("InputPort", name="i", rate=1)
        in_port.set("agent", agent_b)
        agent_b.add("inputs", in_port)
        app.add("agents", agent_a)
        app.add("agents", agent_b)
        for name in ("p1", "p2"):
            place = mm.instantiate("Place", name=name, capacity=2)
            place.set("outputPort", out_port)
            place.set("inputPort", in_port)
            app.add("places", place)
        issues = check_application(app)
        assert any("point-to-point" in issue for issue in issues)

    def test_unconnected_port(self):
        from repro.sdf import check_application
        from repro.sdf.metamodel import sigpml_metamodel
        mm = sigpml_metamodel()
        app = mm.instantiate("Application", name="lonely")
        agent = mm.instantiate("Agent", name="a")
        port = mm.instantiate("OutputPort", name="o", rate=1)
        port.set("agent", agent)
        agent.add("outputs", port)
        app.add("agents", agent)
        issues = check_application(app)
        assert any("not connected" in issue for issue in issues)


class TestCliPam:
    def test_pam_command_small(self, capsys):
        from repro.cli import main
        assert main(["pam", "--max-states", "400", "--steps", "20"]) == 0
        out = capsys.readouterr().out
        assert "deployment" in out
        assert "mono" in out
