"""The mandatory equivalence harness: symbolic vs explicit reachability.

Every model family in the corpus is cross-checked — identical state
spaces (states, transitions, serialized bytes, truncation frontiers)
plus the pure fixpoint's state count, deadlock verdict and event
liveness. A mismatch anywhere is a bug in the symbolic engine, never an
acceptable difference.
"""

import pytest

from repro.ccsl import (
    AlternatesRuntime,
    DeadlineRuntime,
    DelayedForRuntime,
    FilterByRuntime,
    PeriodicOnRuntime,
    PrecedesRuntime,
    SampledOnRuntime,
)
from repro.engine import ExecutionModel, assert_equivalent, cross_check
from repro.errors import SymbolicEncodingError
from repro.moccml.semantics.runtime import FormulaRuntime
from repro.boolalg.expr import Implies, Not, Or, Var
from repro.sdf import SdfBuilder, weave_sdf
from repro.workbench import CcslSpec, load


def sdf_chain(length, capacity=1, variant="default"):
    builder = SdfBuilder(f"chain{length}c{capacity}")
    for index in range(length):
        builder.agent(f"a{index}")
    for index in range(length - 1):
        builder.connect(f"a{index}", f"a{index + 1}", capacity=capacity)
    model, _app = builder.build()
    return weave_sdf(model, place_variant=variant).execution_model


def sdf_forkjoin(capacity=1):
    builder = SdfBuilder("forkjoin")
    for name in ("split", "left", "right", "join"):
        builder.agent(name)
    builder.connect("split", "left", capacity=capacity)
    builder.connect("split", "right", capacity=capacity)
    builder.connect("left", "join", capacity=capacity)
    builder.connect("right", "join", capacity=capacity)
    model, _app = builder.build()
    return weave_sdf(model).execution_model


def ccsl_mix():
    return ExecutionModel(
        ["a", "b", "c", "d"],
        [AlternatesRuntime("a", "b"),
         PrecedesRuntime("b", "c", bound=2),
         DelayedForRuntime("d", "a", 2),
         DeadlineRuntime("a", "c", 4)],
        name="ccsl-mix")


def ccsl_filters():
    return ExecutionModel(
        ["a", "b", "f", "p", "s"],
        [AlternatesRuntime("a", "b"),
         PeriodicOnRuntime("p", "a", 3, 1),
         FilterByRuntime("f", "b", "1(10)"),
         SampledOnRuntime("s", "a", "b")],
        name="ccsl-filters")


def formula_only():
    return ExecutionModel(
        ["x", "y", "z", "free"],
        [FormulaRuntime("sub", Implies(Var("y"), Var("x"))),
         FormulaRuntime("excl", Or(Not(Var("x")), Not(Var("z"))))],
        name="formula-only")


CORPUS = {
    "chain2": lambda: sdf_chain(2),
    "chain3-cap2": lambda: sdf_chain(3, capacity=2),
    "chain4": lambda: sdf_chain(4),
    "chain3-strict": lambda: sdf_chain(3, capacity=2, variant="strict"),
    "chain3-multiport": lambda: sdf_chain(3, capacity=2,
                                          variant="multiport"),
    "forkjoin": lambda: sdf_forkjoin(),
    "forkjoin-cap2": lambda: sdf_forkjoin(capacity=2),
    "ccsl-mix": ccsl_mix,
    "ccsl-filters": ccsl_filters,
    "formula-only": formula_only,
    "ccsl-spec": lambda: load(CcslSpec(
        "spec", events=["a", "b", "c"],
        constraints=[("Alternates", ["a", "b"]),
                     ("BoundedPrecedes", ["b", "c", 1])])).execution_model,
}


class TestCorpusEquivalence:
    @pytest.mark.parametrize("name", sorted(CORPUS))
    def test_full_space(self, name):
        report = assert_equivalent(CORPUS[name](), max_states=20_000)
        assert report["agree"]
        assert report["fixpoint"]["states"] == report["states"]

    @pytest.mark.parametrize("name", ["chain3-cap2", "forkjoin",
                                      "ccsl-mix"])
    def test_include_empty(self, name):
        assert_equivalent(CORPUS[name](), include_empty=True)

    @pytest.mark.parametrize("name", ["chain3-cap2", "forkjoin"])
    def test_maximal_only(self, name):
        assert_equivalent(CORPUS[name](), maximal_only=True)

    def test_mismatch_is_reported_not_hidden(self):
        # sanity of the harness itself: a cross_check report carries the
        # metrics it compared
        report = cross_check(sdf_chain(2))
        assert report["states"] > 0
        assert report["mismatches"] == []


class TestPropertyCrossCheck:
    """The property battery rides every cross_check: both ctl backends
    must agree on verdicts and witnesses for every corpus model."""

    def test_report_carries_property_results(self):
        report = cross_check(sdf_chain(3, capacity=2))
        assert report["agree"]
        battery = report["properties"]
        assert len(battery) == 10
        verdicts = {entry["verdict"] for entry in battery}
        assert verdicts <= {"holds", "fails"}  # complete space: definitive
        assert any(entry["witness"] for entry in battery)

    def test_deadlocking_model_battery(self):
        from repro.ccsl import DelayedForRuntime
        model = ExecutionModel(
            ["a", "b"],
            [PrecedesRuntime("a", "b", bound=1),
             DelayedForRuntime("b", "a", 3)],
            name="deadlocker")
        report = assert_equivalent(model)
        deadlock_entries = {entry["property"]: entry["verdict"]
                            for entry in report["properties"]}
        assert deadlock_entries["EF deadlock"] == "holds"
        assert deadlock_entries["AG !deadlock"] == "fails"


class TestNonEncodableModels:
    def make_unbounded(self):
        return ExecutionModel(["a", "b"], [PrecedesRuntime("a", "b")],
                              name="unbounded")

    def test_symbolic_strategy_raises(self):
        from repro.engine import explore
        with pytest.raises(SymbolicEncodingError, match="closure bound"):
            explore(self.make_unbounded(), max_states=50,
                    strategy="symbolic")

    def test_auto_falls_back_to_explicit(self):
        from repro.engine import explore
        model = self.make_unbounded()
        # force auto past the event threshold by padding free events
        for index in range(12):
            model.add_event(f"pad{index}")
        space = explore(model, max_states=50, strategy="auto")
        assert space.truncated  # unbounded counter, budget-truncated
