"""Unit tests of the symbolic fixpoint engine itself: local closure,
variable-order heuristic, relation encoding, fixpoint iteration,
BDD-level invariant checks, and kernel-level caching."""

import pytest

from repro.ccsl import AlternatesRuntime, PrecedesRuntime
from repro.engine import (
    ExecutionModel,
    CompiledStateView,
    explore,
    symbolic_check_variable_bound,
    symbolic_deadlock_free,
    symbolic_event_liveness,
    symbolic_reachable,
    symbolic_variable_bounds,
)
from repro.engine.symbolic import (
    MAX_ALPHABET,
    TransitionSystem,
    _close_local,
    _constraint_order,
)
from repro.errors import EngineError, SymbolicEncodingError
from repro.sdf import SdfBuilder, weave_sdf


def chain_model(length=3, capacity=2):
    builder = SdfBuilder(f"chain{length}")
    for index in range(length):
        builder.agent(f"a{index}")
    for index in range(length - 1):
        builder.connect(f"a{index}", f"a{index + 1}", capacity=capacity)
    model, _app = builder.build()
    return weave_sdf(model).execution_model


class TestLocalClosure:
    def test_alternates_has_two_states(self):
        space = _close_local(0, AlternatesRuntime("a", "b"), 64)
        assert space.n_states == 2
        assert space.alphabet == ("a", "b")
        # from the initial state only {} and {a} are acceptable
        assert set(space.delta[0]) == {frozenset(), frozenset({"a"})}
        assert space.delta[0][frozenset({"a"})] == 1
        assert space.delta[0][frozenset()] == 0

    def test_bounded_precedes_state_count(self):
        space = _close_local(0, PrecedesRuntime("a", "b", bound=3), 64)
        assert space.n_states == 4  # counter values 0..3

    def test_unbounded_counter_overflows(self):
        with pytest.raises(SymbolicEncodingError, match="closure bound"):
            _close_local(0, PrecedesRuntime("a", "b"), 16)

    def test_keys_match_runtime_state_keys(self):
        runtime = AlternatesRuntime("a", "b")
        space = _close_local(0, runtime, 64)
        assert space.keys[0] == runtime.state_key()


class TestConstraintOrder:
    def test_pipeline_order_recovered(self):
        model = chain_model(4, capacity=1)
        order = _constraint_order(model.constraints)
        # neighbours in the order must share events often: check that
        # every constraint is adjacent to at least one event-sharing
        # constraint (the pipeline property), except possibly at seams
        labels = [model.constraints[i].label for i in order]
        assert len(labels) == len(model.constraints)
        adjacent_sharing = 0
        for left, right in zip(order, order[1:]):
            shared = (model.constraints[left].constrained_events
                      & model.constraints[right].constrained_events)
            adjacent_sharing += bool(shared)
        assert adjacent_sharing >= len(order) // 2

    def test_order_is_a_permutation(self):
        model = chain_model(3)
        order = _constraint_order(model.constraints)
        assert sorted(order) == list(range(len(model.constraints)))


class TestTransitionSystem:
    def test_interleaved_current_primed_bits(self):
        system = TransitionSystem(chain_model(3))
        order = system.bdd.order
        for index in range(len(system.spaces)):
            for cur, primed in zip(system.cur_names[index],
                                   system.primed_names[index]):
                assert order.index(primed) == order.index(cur) + 1

    def test_steps_match_execution_model(self):
        model = chain_model(3)
        system = TransitionSystem(model)
        assert list(system.steps_at(system.initial_ids)) == \
            model.clone().acceptable_steps()

    def test_successor_matches_advance(self):
        model = chain_model(3)
        system = TransitionSystem(model)
        work = model.clone()
        for step in work.acceptable_steps():
            succ = system.successor(system.initial_ids, step)
            snapshot = work.snapshot()
            work.advance(step, check=False)
            assert system.decode_key(succ) == work.configuration()
            work.restore(snapshot)

    def test_unacceptable_step_raises(self):
        system = TransitionSystem(chain_model(3))
        with pytest.raises(EngineError, match="not acceptable"):
            system.successor(system.initial_ids,
                             frozenset({"a2.start", "a2.stop"}))

    def test_wide_alphabet_rejected(self):
        from repro.moccml.semantics.runtime import FormulaRuntime
        from repro.boolalg.expr import Or, Var
        events = [f"e{i}" for i in range(MAX_ALPHABET + 1)]
        model = ExecutionModel(
            events, [FormulaRuntime("wide", Or(*map(Var, events)))],
            name="wide")
        with pytest.raises(SymbolicEncodingError, match="alphabet"):
            TransitionSystem(model)


class TestFixpoint:
    def test_layer_counts_sum_to_total(self):
        reachable = symbolic_reachable(chain_model(3))
        assert sum(reachable.layer_counts()) == reachable.count()
        assert not reachable.truncated

    def test_depth_budget_truncates(self):
        reachable = symbolic_reachable(chain_model(3), max_depth=1)
        assert reachable.truncated
        with pytest.raises(EngineError, match="complete reachable set"):
            reachable.is_deadlock_free()

    def test_state_budget_truncates(self):
        reachable = symbolic_reachable(chain_model(4), max_states=3)
        assert reachable.truncated
        assert reachable.count() > 3  # stopped after the violating layer

    def test_states_enumeration_matches_graph(self):
        model = chain_model(3)
        space = explore(model)
        keys = {data["key"] for _n, data in space.graph.nodes(data=True)}
        assert set(symbolic_reachable(model).states()) == keys

    def test_contains_initial(self):
        model = chain_model(3)
        reachable = symbolic_reachable(model)
        assert reachable.contains(reachable.system.initial_ids)

    def test_to_statespace_roundtrip(self):
        model = chain_model(3)
        reachable = symbolic_reachable(model)
        assert reachable.to_statespace().to_json() == \
            explore(model).to_json()

    def test_summary_fields(self):
        summary = symbolic_reachable(chain_model(3)).summary()
        assert summary["states"] == 9
        assert summary["deadlocks"] == 0
        assert not summary["truncated"]
        assert summary["state_bits"] > 0


class TestSymbolicAnalyses:
    def test_deadlock_free_chain(self):
        assert symbolic_deadlock_free(chain_model(3))

    def test_deadlocking_model(self):
        # a must lead and b must lead: no first step at all
        model = ExecutionModel(
            ["a", "b"],
            [AlternatesRuntime("a", "b"), AlternatesRuntime("b", "a")],
            name="deadlock")
        assert not symbolic_deadlock_free(model)
        assert not explore(model).is_deadlock_free()

    def test_liveness_matches_graph(self):
        from repro.engine import event_liveness
        model = chain_model(3)
        assert symbolic_event_liveness(model) == \
            event_liveness(explore(model))

    def test_variable_bounds_match_graph(self):
        from repro.engine import variable_bounds
        model = chain_model(3, capacity=2)
        assert symbolic_variable_bounds(model) == \
            variable_bounds(model, explore(model))

    def test_buffer_bound_verification(self):
        model = chain_model(3, capacity=2)
        label = next(c.label for c in model.constraints
                     if "Place" in c.label)
        assert symbolic_check_variable_bound(model, f"{label}.size",
                                             low=0, high=2)
        assert not symbolic_check_variable_bound(model, f"{label}.size",
                                                 high=1)

    def test_unknown_variable_raises(self):
        with pytest.raises(EngineError, match="no automaton variable"):
            symbolic_check_variable_bound(chain_model(2), "nope.var")

    def test_local_states_by_label(self):
        model = chain_model(3, capacity=2)
        reachable = symbolic_reachable(model)
        label = next(c.label for c in model.constraints
                     if "Place" in c.label)
        sizes = {dict(key[2])["size"]
                 for key in reachable.local_states(label)}
        assert sizes == {0, 1, 2}
        with pytest.raises(EngineError, match="no constraint labelled"):
            reachable.local_states("missing")


class TestKernelCaching:
    def test_transition_system_shared_across_clones(self):
        model = chain_model(3)
        system = model.kernel.transition_system(model)
        clone = model.clone()
        assert clone.kernel.transition_system(clone) is system
        assert model.kernel.cache_sizes()["transition_systems"] == 1

    def test_clear_drops_transition_systems(self):
        model = chain_model(3)
        model.kernel.transition_system(model)
        model.kernel.clear()
        assert model.kernel.cache_sizes()["transition_systems"] == 0

    def test_compiled_view_protocol(self):
        model = chain_model(3)
        view = CompiledStateView(model.kernel.transition_system(model))
        work = model.clone()
        assert view.configuration() == work.configuration()
        assert view.is_accepting() == work.is_accepting()
        token = view.snapshot()
        step = view.acceptable_steps()[0]
        view.advance(step)
        assert view.configuration() != token and view.snapshot() != token
        view.restore(token)
        assert view.configuration() == work.configuration()
