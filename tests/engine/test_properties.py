"""Tests for property checking over state spaces (AG/EF/AF/leads-to),
including the three-valued verdicts on truncated spaces."""

import pytest

from repro.ccsl import AlternatesRuntime, PrecedesRuntime
from repro.engine import ExecutionModel, explore
from repro.engine.properties import (
    Verdict,
    always,
    counterexample_path,
    eventually_reachable,
    inevitable,
    leads_to,
    never,
    occurs,
    together,
)
from repro.engine.statespace import StateSpace


def alternation_space():
    model = ExecutionModel(["a", "b"], [AlternatesRuntime("a", "b")])
    return explore(model)


def free_space():
    return explore(ExecutionModel(["a", "b"]))


def deadlock_space():
    model = ExecutionModel(
        ["a", "b"], [PrecedesRuntime("a", "b"), PrecedesRuntime("b", "a")])
    return explore(model)


class TestPredicates:
    def test_occurs(self):
        assert occurs("a")(frozenset({"a", "b"}))
        assert not occurs("a")(frozenset({"b"}))

    def test_together(self):
        assert together("a", "b")(frozenset({"a", "b", "c"}))
        assert not together("a", "b")(frozenset({"a"}))


class TestSafety:
    def test_alternation_never_simultaneous(self):
        space = alternation_space()
        assert never(space, together("a", "b"))
        assert not never(space, occurs("a"))

    def test_always_singleton_steps(self):
        space = alternation_space()
        assert always(space, lambda step: len(step) == 1)

    def test_free_model_violates_exclusion(self):
        space = free_space()
        assert not never(space, together("a", "b"))


class TestReachability:
    def test_eventually_reachable(self):
        space = alternation_space()
        assert eventually_reachable(space, occurs("b"))
        assert not eventually_reachable(space, together("a", "b"))

    def test_counterexample_is_shortest(self):
        space = alternation_space()
        path = counterexample_path(space, occurs("b"))
        assert path == [frozenset({"a"}), frozenset({"b"})]

    def test_counterexample_none_when_safe(self):
        space = alternation_space()
        assert counterexample_path(space, together("a", "b")) is None


class TestInevitability:
    def test_alternation_b_inevitable(self):
        # every infinite run is a b a b...: b is inevitable
        space = alternation_space()
        assert inevitable(space, occurs("b"))
        assert inevitable(space, occurs("a"))

    def test_free_model_nothing_inevitable(self):
        # the free model can loop on {b} forever, avoiding a
        space = free_space()
        assert not inevitable(space, occurs("a"))

    def test_deadlock_breaks_inevitability(self):
        space = deadlock_space()
        assert not inevitable(space, occurs("a"))

    def test_truncated_space_rejected(self):
        model = ExecutionModel(["a", "b"], [PrecedesRuntime("a", "b")])
        space = explore(model, max_states=5)
        assert space.truncated
        with pytest.raises(ValueError):
            inevitable(space, occurs("a"))


class TestLeadsTo:
    def test_alternation_a_leads_to_b(self):
        space = alternation_space()
        assert leads_to(space, occurs("a"), occurs("b"))
        assert leads_to(space, occurs("b"), occurs("a"))

    def test_free_model_no_response(self):
        space = free_space()
        assert not leads_to(space, occurs("a"), occurs("b"))

    def test_sdf_request_response(self):
        # producer firing leads to consumer firing in a bounded pipeline
        from repro.sdf import SdfBuilder, build_execution_model
        builder = SdfBuilder("duo")
        builder.agent("p")
        builder.agent("c")
        builder.connect("p", "c", capacity=2)
        model, _app = builder.build()
        space = explore(build_execution_model(model).execution_model)
        assert leads_to(space, occurs("p.start"), occurs("c.start"))


class TestVerdict:
    def test_truthiness(self):
        assert Verdict.HOLDS
        assert not Verdict.FAILS
        assert Verdict.HOLDS.definitive and Verdict.FAILS.definitive
        assert not Verdict.UNKNOWN.definitive

    def test_unknown_refuses_boolean_coercion(self):
        with pytest.raises(ValueError, match="UNKNOWN"):
            bool(Verdict.UNKNOWN)

    def test_str_and_value(self):
        assert str(Verdict.UNKNOWN) == "unknown"
        assert Verdict.HOLDS.value == "holds"


def truncated_space():
    model = ExecutionModel(["a", "b"], [PrecedesRuntime("a", "b")])
    space = explore(model, max_states=5)
    assert space.truncated
    return space


class TestTruncationSoundness:
    """The headline bugfix: no definitive verdict from a partial search
    unless the explored region alone proves it."""

    def test_always_unknown_when_unrefuted(self):
        # no violation in 5 states does NOT verify the property
        assert always(truncated_space(), lambda step: True) \
            is Verdict.UNKNOWN

    def test_always_refuted_is_definitive(self):
        # a violating step inside the explored region refutes soundly
        assert always(truncated_space(), occurs("b")) is Verdict.FAILS

    def test_never_unknown_when_unwitnessed(self):
        assert never(truncated_space(), lambda step: False) \
            is Verdict.UNKNOWN

    def test_never_refuted_is_definitive(self):
        assert never(truncated_space(), occurs("a")) is Verdict.FAILS

    def test_eventually_witnessed_is_definitive(self):
        assert eventually_reachable(truncated_space(), occurs("a")) \
            is Verdict.HOLDS

    def test_eventually_unknown_when_unwitnessed(self):
        assert eventually_reachable(truncated_space(),
                                    lambda step: False) is Verdict.UNKNOWN

    def test_assert_idiom_errors_instead_of_passing(self):
        # the pre-fix behaviour: `assert always(space, p)` silently
        # "verified" a truncated search; now it raises
        with pytest.raises(ValueError):
            assert always(truncated_space(), lambda step: True)

    def test_leads_to_still_rejects_truncation(self):
        with pytest.raises(ValueError):
            leads_to(truncated_space(), occurs("a"), occurs("b"))

    def test_complete_space_stays_definitive(self):
        space = alternation_space()
        assert always(space, lambda step: len(step) == 1) is Verdict.HOLDS
        assert never(space, occurs("a")) is Verdict.FAILS
        assert eventually_reachable(space, occurs("b")) is Verdict.HOLDS

    def test_maximal_only_space_is_partial_too(self):
        # the ASAP reduction drops the {a} and {b} steps of the free
        # model, so "never exactly {a}" must not be verified from it
        space = explore(ExecutionModel(["a", "b"]), maximal_only=True)
        assert space.maximal_only and not space.truncated
        assert never(space, lambda step: step == frozenset({"a"})) \
            is Verdict.UNKNOWN
        # sound directions stay definitive; AF-style checks refuse
        assert eventually_reachable(space, occurs("a")) is Verdict.HOLDS
        with pytest.raises(ValueError, match="maximal_only"):
            inevitable(space, occurs("a"))
        with pytest.raises(ValueError, match="maximal_only"):
            leads_to(space, occurs("a"), occurs("b"))


class TestEdgeCases:
    def test_cycle_through_initial_state(self):
        # a-b alternation cycles back through the initial state; the
        # avoidance-trap computation must see that cycle
        space = alternation_space()
        assert inevitable(space, occurs("a")) is Verdict.HOLDS
        assert inevitable(space, lambda step: False) is Verdict.FAILS

    def test_self_loop_on_initial(self):
        space = free_space()  # {a}, {b}, {a,b} all loop on one state
        assert space.n_states == 1
        assert inevitable(space, occurs("a")) is Verdict.FAILS
        assert leads_to(space, occurs("a"), occurs("b")) is Verdict.FAILS

    def test_single_state_empty_step_set(self):
        # mutual precedence deadlocks immediately: one state, no steps
        space = deadlock_space()
        assert space.n_states == 1
        assert space.graph.number_of_edges() == 0
        assert always(space, occurs("a")) is Verdict.HOLDS  # vacuous
        assert eventually_reachable(space, occurs("a")) is Verdict.FAILS
        assert inevitable(space, occurs("a")) is Verdict.FAILS  # deadlock
        assert leads_to(space, occurs("a"), occurs("b")) is Verdict.HOLDS

    def test_frontier_node_not_a_deadlock(self):
        # truncation frontier nodes have no outgoing edges but are NOT
        # deadlocks; inevitability refuses to guess either way
        space = truncated_space()
        frontier = [node for node, data in space.graph.nodes(data=True)
                    if data.get("frontier")]
        assert frontier
        assert not set(space.deadlocks()) & set(frontier)

    def test_counterexample_on_deadlocked_space(self):
        space = deadlock_space()
        assert counterexample_path(space, occurs("a")) is None


def naive_leads_to(space, trigger, target):
    """The pre-optimization implementation: rebuild a state space and
    re-run inevitability per trigger source — the regression oracle."""
    sources = {v for _u, v, data in space.graph.edges(data=True)
               if trigger(data["step"])}
    for source in sources:
        sub_space = StateSpace(graph=space.graph, initial=source,
                               events=space.events, truncated=False,
                               name=f"{space.name}@{source}")
        if inevitable(sub_space, target) is Verdict.FAILS:
            return Verdict.FAILS
    return Verdict.HOLDS


class TestLeadsToSharedPass:
    """The shared backward pass must agree with the per-source rerun."""

    def corpus(self):
        from repro.sdf import SdfBuilder, weave_sdf
        spaces = [alternation_space(), free_space(), deadlock_space()]
        builder = SdfBuilder("trio")
        for name in ("x", "y", "z"):
            builder.agent(name)
        builder.connect("x", "y", capacity=2)
        builder.connect("y", "z", capacity=1)
        model, _app = builder.build()
        spaces.append(explore(weave_sdf(model).execution_model))
        model = ExecutionModel(
            ["a", "b", "c"],
            [AlternatesRuntime("a", "b"), PrecedesRuntime("b", "c", bound=2)])
        spaces.append(explore(model))
        return spaces

    def test_identical_verdicts_on_corpus(self):
        checked = 0
        for space in self.corpus():
            events = sorted(space.events)
            pairs = [(events[0], events[-1]), (events[-1], events[0]),
                     (events[0], events[0])]
            if len(events) > 2:
                pairs.append((events[1], events[2]))
            for trigger_event, target_event in pairs:
                expected = naive_leads_to(
                    space, occurs(trigger_event), occurs(target_event))
                actual = leads_to(
                    space, occurs(trigger_event), occurs(target_event))
                assert actual is expected, (
                    space.name, trigger_event, target_event)
                checked += 1
        assert checked >= 15

    def test_trigger_into_trap_fails(self):
        space = free_space()
        # any 'a' step re-enters the single looping state, which can
        # avoid 'b' forever
        assert leads_to(space, occurs("a"), occurs("b")) is Verdict.FAILS

    def test_no_trigger_holds_vacuously(self):
        space = alternation_space()
        assert leads_to(space, together("a", "b"), occurs("b")) \
            is Verdict.HOLDS


class TestDeploymentProperties:
    def test_mutex_as_safety_property(self):
        from repro.deployment import Allocation, Platform, deploy
        from repro.sdf import SdfBuilder
        builder = SdfBuilder("pipe")
        builder.agent("x")
        builder.agent("y")
        builder.connect("x", "y", capacity=2)
        model, app = builder.build()
        platform = Platform("mono")
        platform.processor("cpu")
        result = deploy(model, app, platform,
                        Allocation({"x": "cpu", "y": "cpu"}))
        space = explore(result.execution_model)
        assert never(space, together("x.start", "y.start"))
