"""Tests for property checking over state spaces (AG/EF/AF/leads-to)."""

import pytest

from repro.ccsl import AlternatesRuntime, PrecedesRuntime
from repro.engine import ExecutionModel, explore
from repro.engine.properties import (
    always,
    counterexample_path,
    eventually_reachable,
    inevitable,
    leads_to,
    never,
    occurs,
    together,
)


def alternation_space():
    model = ExecutionModel(["a", "b"], [AlternatesRuntime("a", "b")])
    return explore(model)


def free_space():
    return explore(ExecutionModel(["a", "b"]))


def deadlock_space():
    model = ExecutionModel(
        ["a", "b"], [PrecedesRuntime("a", "b"), PrecedesRuntime("b", "a")])
    return explore(model)


class TestPredicates:
    def test_occurs(self):
        assert occurs("a")(frozenset({"a", "b"}))
        assert not occurs("a")(frozenset({"b"}))

    def test_together(self):
        assert together("a", "b")(frozenset({"a", "b", "c"}))
        assert not together("a", "b")(frozenset({"a"}))


class TestSafety:
    def test_alternation_never_simultaneous(self):
        space = alternation_space()
        assert never(space, together("a", "b"))
        assert not never(space, occurs("a"))

    def test_always_singleton_steps(self):
        space = alternation_space()
        assert always(space, lambda step: len(step) == 1)

    def test_free_model_violates_exclusion(self):
        space = free_space()
        assert not never(space, together("a", "b"))


class TestReachability:
    def test_eventually_reachable(self):
        space = alternation_space()
        assert eventually_reachable(space, occurs("b"))
        assert not eventually_reachable(space, together("a", "b"))

    def test_counterexample_is_shortest(self):
        space = alternation_space()
        path = counterexample_path(space, occurs("b"))
        assert path == [frozenset({"a"}), frozenset({"b"})]

    def test_counterexample_none_when_safe(self):
        space = alternation_space()
        assert counterexample_path(space, together("a", "b")) is None


class TestInevitability:
    def test_alternation_b_inevitable(self):
        # every infinite run is a b a b...: b is inevitable
        space = alternation_space()
        assert inevitable(space, occurs("b"))
        assert inevitable(space, occurs("a"))

    def test_free_model_nothing_inevitable(self):
        # the free model can loop on {b} forever, avoiding a
        space = free_space()
        assert not inevitable(space, occurs("a"))

    def test_deadlock_breaks_inevitability(self):
        space = deadlock_space()
        assert not inevitable(space, occurs("a"))

    def test_truncated_space_rejected(self):
        model = ExecutionModel(["a", "b"], [PrecedesRuntime("a", "b")])
        space = explore(model, max_states=5)
        assert space.truncated
        with pytest.raises(ValueError):
            inevitable(space, occurs("a"))


class TestLeadsTo:
    def test_alternation_a_leads_to_b(self):
        space = alternation_space()
        assert leads_to(space, occurs("a"), occurs("b"))
        assert leads_to(space, occurs("b"), occurs("a"))

    def test_free_model_no_response(self):
        space = free_space()
        assert not leads_to(space, occurs("a"), occurs("b"))

    def test_sdf_request_response(self):
        # producer firing leads to consumer firing in a bounded pipeline
        from repro.sdf import SdfBuilder, build_execution_model
        builder = SdfBuilder("duo")
        builder.agent("p")
        builder.agent("c")
        builder.connect("p", "c", capacity=2)
        model, _app = builder.build()
        space = explore(build_execution_model(model).execution_model)
        assert leads_to(space, occurs("p.start"), occurs("c.start"))


class TestDeploymentProperties:
    def test_mutex_as_safety_property(self):
        from repro.deployment import Allocation, Platform, deploy
        from repro.sdf import SdfBuilder
        builder = SdfBuilder("pipe")
        builder.agent("x")
        builder.agent("y")
        builder.connect("x", "y", capacity=2)
        model, app = builder.build()
        platform = Platform("mono")
        platform.processor("cpu")
        result = deploy(model, app, platform,
                        Allocation({"x": "cpu", "y": "cpu"}))
        space = explore(result.execution_model)
        assert never(space, together("x.start", "y.start"))
