"""Tests for the unified temporal-property checker (repro.engine.ctl):
parser, explicit three-valued evaluation, symbolic fixpoint evaluation,
witness extraction and the check() front door."""

import pytest

from repro.ccsl import AlternatesRuntime, DelayedForRuntime, PrecedesRuntime
from repro.engine import ExecutionModel, explore
from repro.engine.ctl import (
    AG,
    AU,
    And,
    CheckResult,
    Deadlock,
    Implies,
    InState,
    LeadsTo,
    Not,
    Occurs,
    Or,
    TrueProp,
    VarCmp,
    check,
    check_space,
    parse_property,
    replay_steps,
)
from repro.engine.properties import Verdict
from repro.errors import EngineError, ParseError
from repro.sdf import SdfBuilder, weave_sdf


def chain_model(length=4, capacity=2):
    builder = SdfBuilder(f"chain{length}c{capacity}")
    for index in range(length):
        builder.agent(f"a{index}")
    for index in range(length - 1):
        builder.connect(f"a{index}", f"a{index + 1}", capacity=capacity)
    model, _app = builder.build()
    return weave_sdf(model).execution_model


def alternation_model():
    return ExecutionModel(["a", "b"], [AlternatesRuntime("a", "b")],
                          name="alt")


def deadlocking_model():
    # a precedes b with bound 1 and b delayed after a by 3: the counter
    # fills, then nothing can fire
    return ExecutionModel(
        ["a", "b"],
        [PrecedesRuntime("a", "b", bound=1), DelayedForRuntime("b", "a", 3)],
        name="deadlocker")


class TestParser:
    ROUND_TRIPS = [
        "true", "false", "deadlock", "!deadlock",
        "occurs(a.start)",
        "AG !deadlock", "AF occurs(b)", "EX occurs(a)", "AX deadlock",
        "EG !occurs(b)", "EF deadlock",
        "A[occurs(a) U occurs(b)]", "E[!occurs(a) U deadlock]",
        "occurs(a) leads_to occurs(b)",
        "AG (occurs(a) -> AF occurs(b))",
        "occurs(a) & occurs(b) | !occurs(c)",
        "var(P@x.size) <= 2", "var(P@x.size) != 0",
        "state(Alternates(a, b), 1)",
        "state(X, Idle) leads_to state(X, Busy)",
        "AG (AF occurs(a) & EF (occurs(b) | deadlock))",
    ]

    @pytest.mark.parametrize("text", ROUND_TRIPS)
    def test_round_trip(self, text):
        prop = parse_property(text)
        assert parse_property(prop.to_text()) == prop

    def test_ast_shapes(self):
        assert parse_property("AG !deadlock") == AG(Not(Deadlock()))
        assert parse_property("true") == TrueProp()
        assert parse_property("occurs(a) leads_to occurs(b)") == LeadsTo(
            Occurs("a"), Occurs("b"))
        assert parse_property("A[occurs(a) U occurs(b)]") == AU(
            Occurs("a"), Occurs("b"))
        assert parse_property("occurs(a) -> occurs(b) -> occurs(c)") == \
            Implies(Occurs("a"), Implies(Occurs("b"), Occurs("c")))

    def test_precedence(self):
        prop = parse_property("occurs(a) & occurs(b) | occurs(c)")
        assert prop == Or(And(Occurs("a"), Occurs("b")), Occurs("c"))
        prop = parse_property("occurs(a) | occurs(b) -> occurs(c)")
        assert prop == Implies(Or(Occurs("a"), Occurs("b")), Occurs("c"))
        prop = parse_property("AG occurs(a) -> occurs(b)")
        assert prop == Implies(AG(Occurs("a")), Occurs("b"))

    def test_var_comparison(self):
        prop = parse_property("var(L.size) >= 1")
        assert prop == VarCmp("L.size", ">=", 1)
        assert prop.holds_for(2) and not prop.holds_for(0)

    @pytest.mark.parametrize("bad", [
        "", "AG", "occurs()", "occurs(a", "AG deadlock extra",
        "A[occurs(a) occurs(b)]", "var(x.y) ?? 2", "var(x.y) <= zz",
        "state(onlylabel)", "unknownword", "(occurs(a)",
    ])
    def test_syntax_errors(self, bad):
        with pytest.raises(ParseError):
            parse_property(bad)

    def test_nested_parens_in_labels(self):
        prop = parse_property("state(Alternates(a, b), 0)")
        assert prop == InState("Alternates(a, b)", "0")
        prop = parse_property("var(Precedes(a, b).count) < 3")
        assert prop == VarCmp("Precedes(a, b).count", "<", 3)


class TestExplicitBackend:
    def test_basic_verdicts(self):
        space = explore(alternation_model())
        assert check_space(space, "AG !deadlock").verdict is Verdict.HOLDS
        assert check_space(space, "EF occurs(b)").verdict is Verdict.HOLDS
        assert check_space(space, "AF occurs(b)").verdict is Verdict.HOLDS
        assert check_space(space, "AG occurs(a)").verdict is Verdict.FAILS
        assert check_space(space, "EF deadlock").verdict is Verdict.FAILS

    def test_until_and_leads_to(self):
        space = explore(chain_model())
        assert check_space(
            space, "A[!occurs(a3.start) U occurs(a0.start)]"
        ).verdict is Verdict.HOLDS
        assert check_space(
            space, "occurs(a0.start) leads_to occurs(a3.start)"
        ).verdict is Verdict.HOLDS

    def test_boolean_structure(self):
        space = explore(alternation_model())
        assert check_space(space, "true").verdict is Verdict.HOLDS
        assert check_space(space, "false").verdict is Verdict.FAILS
        assert check_space(
            space, "occurs(a) & !occurs(b)").verdict is Verdict.HOLDS
        assert check_space(
            space, "occurs(a) -> AF occurs(b)").verdict is Verdict.HOLDS

    def test_deadlock_model(self):
        space = explore(deadlocking_model())
        assert check_space(space, "EF deadlock").verdict is Verdict.HOLDS
        assert check_space(space, "AF deadlock").verdict is Verdict.HOLDS
        result = check_space(space, "AG !deadlock")
        assert result.verdict is Verdict.FAILS
        assert result.witness_kind == "counterexample"
        assert replay_steps(deadlocking_model(), result.witness_steps)

    def test_truncated_space_three_valued(self):
        model = chain_model(8)
        space = explore(model, max_states=50)
        assert space.truncated
        # unprovable from a prefix: UNKNOWN, with a reason
        result = check_space(space, "AG !deadlock")
        assert result.verdict is Verdict.UNKNOWN
        assert result.truncated
        assert "truncated" in result.reason
        # provable from the prefix: definitive either way
        assert check_space(
            space, "EF occurs(a1.start)").verdict is Verdict.HOLDS
        assert check_space(
            space, "AG occurs(a0.start)").verdict is Verdict.FAILS

    def test_frontier_is_not_a_deadlock(self):
        model = chain_model(8)
        space = explore(model, max_states=50)
        frontier = [node for node, data in space.graph.nodes(data=True)
                    if data.get("frontier")]
        assert frontier
        # the explored prefix alone cannot prove a deadlock exists —
        # frontier nodes without successors must not masquerade as one
        assert check_space(space, "EF deadlock").verdict is Verdict.UNKNOWN

    def test_state_and_var_atoms(self):
        model = alternation_model()
        label = model.constraints[0].label
        space = explore(model)
        assert check_space(
            space, f"EF state({label}, 1)").verdict is Verdict.HOLDS
        assert check_space(
            space, f"AG state({label}, 0)").verdict is Verdict.FAILS

    def test_key_atom_errors(self):
        space = explore(alternation_model())
        with pytest.raises(EngineError, match="known labels"):
            check_space(space, "EF state(nosuch, 1)")
        with pytest.raises(EngineError, match="must be"):
            check_space(space, "AG var(nodot) <= 1")

    @pytest.mark.parametrize("strategy", ["explicit", "symbolic"])
    def test_typoed_event_errors_instead_of_verdict(self, strategy):
        # a misspelt event must never yield a definitive verdict
        with pytest.raises(EngineError, match="unknown event"):
            check(alternation_model(), "AG !occurs(a.strt)",
                  strategy=strategy)

    @pytest.mark.parametrize("strategy", ["explicit", "symbolic"])
    def test_typoed_state_value_carries_a_note(self, strategy):
        # an unmatched state() value keeps the sound verdict but flags
        # the possible typo in the reason
        model = alternation_model()
        label = model.constraints[0].label
        result = check(model, f"EF state({label}, 7)", strategy=strategy)
        assert result.verdict is Verdict.FAILS
        assert "possible typo" in result.reason
        assert "'7'" in result.reason
        clean = check(model, f"EF state({label}, 1)", strategy=strategy)
        assert "typo" not in clean.reason

    def test_maximal_only_space_rejected(self):
        # the ASAP reduction under-approximates branching — a verdict
        # on it would be the unsound-partial-search bug all over again
        space = explore(chain_model(3), maximal_only=True)
        assert space.maximal_only
        with pytest.raises(EngineError, match="maximal_only"):
            check_space(space, "EF deadlock")
        # the flag survives serialization, so reloaded spaces are
        # rejected too; full spaces keep their historical byte layout
        from repro.engine.statespace import StateSpace
        reloaded = StateSpace.from_json(space.to_json())
        assert reloaded.maximal_only
        full = explore(chain_model(3))
        assert '"maximal_only"' not in full.to_json()

    def test_json_roundtripped_space_refuses_key_atoms(self):
        from repro.engine.statespace import StateSpace
        space = explore(alternation_model())
        reloaded = StateSpace.from_json(space.to_json())
        with pytest.raises(EngineError, match="configuration keys"):
            check_space(reloaded, "EF state(x, 1)")
        # step atoms still work — they only need the edges
        assert check_space(
            reloaded, "AG !deadlock").verdict is Verdict.HOLDS


class TestSymbolicBackend:
    PROPS = [
        "AG !deadlock", "EF deadlock", "EF occurs(a3.start)",
        "AF occurs(a3.start)", "AG occurs(a0.start)",
        "EG !occurs(a3.start)", "EX occurs(a0.start)",
        "AX !deadlock", "E[!occurs(a1.start) U occurs(a0.stop)]",
        "A[!occurs(a3.start) U occurs(a0.start)]",
        "occurs(a0.start) leads_to occurs(a3.start)",
        "AG var(PlaceLimitation@Place:a0_a1.size) <= 2",
        "EF var(PlaceLimitation@Place:a0_a1.size) == 2",
    ]

    @pytest.mark.parametrize("text", PROPS)
    def test_agrees_with_explicit(self, text):
        model = chain_model()
        explicit = check(model, text, strategy="explicit")
        symbolic = check(model, text, strategy="symbolic")
        assert explicit.verdict is symbolic.verdict
        assert explicit.witness_steps == symbolic.witness_steps
        if symbolic.witness_steps is not None:
            assert replay_steps(model, symbolic.witness_steps)

    def test_deadlock_model_agrees(self):
        model = deadlocking_model()
        for text in ("AG !deadlock", "EF deadlock", "AF deadlock",
                     "EG occurs(a)"):
            explicit = check(model, text, strategy="explicit")
            symbolic = check(model, text, strategy="symbolic")
            assert explicit.verdict is symbolic.verdict, text
            assert explicit.witness_steps == symbolic.witness_steps, text

    def test_definitive_beyond_explicit_budget(self):
        model = chain_model(6)
        space = explore(model, max_states=30)
        assert space.truncated
        assert check_space(space, "AG !deadlock").verdict \
            is Verdict.UNKNOWN
        symbolic = check(model, "AG !deadlock", strategy="symbolic")
        assert symbolic.verdict is Verdict.HOLDS
        assert symbolic.states == 3 ** 5
        assert not symbolic.truncated

    def test_include_empty(self):
        model = chain_model(3)
        for text in ("AG !deadlock", "AF occurs(a0.isExecuting)"):
            explicit = check(model, text, strategy="explicit",
                             include_empty=True)
            symbolic = check(model, text, strategy="symbolic",
                             include_empty=True)
            assert explicit.verdict is symbolic.verdict, text
            assert explicit.witness_steps == symbolic.witness_steps, text


class TestAutoStrategy:
    def test_small_model_stays_explicit(self):
        result = check(alternation_model(), "AG !deadlock",
                       strategy="auto")
        assert result.strategy == "explicit"
        assert result.verdict is Verdict.HOLDS

    def test_unknown_escalates_to_symbolic(self):
        # 2 events < AUTO threshold but the budget truncates: auto
        # resolves the UNKNOWN symbolically
        model = ExecutionModel(
            ["a", "b"],
            [PrecedesRuntime("a", "b", bound=6),
             DelayedForRuntime("b", "a", 4)],
            name="small-deep")
        result = check(model, "AG !deadlock", strategy="auto", max_states=3)
        assert result.strategy == "symbolic"
        assert result.verdict.definitive

    def test_unencodable_falls_back_to_explicit(self):
        model = ExecutionModel(
            ["a", "b"], [PrecedesRuntime("a", "b")], name="unbounded")
        result = check(model, "EF occurs(b)", strategy="auto",
                       max_states=40)
        assert result.strategy == "explicit"
        assert result.verdict is Verdict.HOLDS  # witnessed despite budget

    def test_large_model_goes_symbolic(self):
        result = check(chain_model(4), "AG !deadlock", strategy="auto")
        assert result.strategy == "symbolic"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(EngineError, match="strategy"):
            check(alternation_model(), "true", strategy="bogus")


class TestWitnesses:
    def test_ef_witness_is_shortest(self):
        model = alternation_model()
        result = check(model, "EF occurs(b)", strategy="explicit")
        assert result.verdict is Verdict.HOLDS
        assert result.witness_kind == "witness"
        assert result.witness_steps == [frozenset({"a"})]
        trace = result.witness()
        assert len(trace) == 1 and trace.events == ["a", "b"]

    def test_ag_counterexample_reaches_violation(self):
        model = chain_model()
        result = check(model, "AG occurs(a0.start)", strategy="symbolic")
        assert result.witness_kind == "counterexample"
        assert replay_steps(model, result.witness_steps)
        assert len(result.witness_steps) >= 1

    def test_af_counterexample_is_a_lasso(self):
        # free model loops on {b} forever avoiding a
        model = ExecutionModel(["a", "b"], [], name="free")
        result = check(model, "AF occurs(a)", strategy="explicit")
        # occurs(a) is enabled in the single state, so AF holds here;
        # use a leads_to-shaped failure instead
        assert result.verdict is Verdict.HOLDS

    def test_leads_to_counterexample(self):
        model = ExecutionModel(
            ["a", "b"], [DelayedForRuntime("b", "a", 2)], name="delayed")
        explicit = check(model, "occurs(a) leads_to occurs(b)",
                         strategy="explicit")
        symbolic = check(model, "occurs(a) leads_to occurs(b)",
                         strategy="symbolic")
        assert explicit.verdict is symbolic.verdict
        if explicit.verdict is Verdict.FAILS:
            assert explicit.witness_steps == symbolic.witness_steps
            assert replay_steps(model, explicit.witness_steps)

    def test_eg_witness_lasso_replayable(self):
        model = chain_model(3)
        result = check(model, "EG !occurs(a2.start)", strategy="explicit")
        symbolic = check(model, "EG !occurs(a2.start)",
                         strategy="symbolic")
        assert result.verdict is symbolic.verdict
        if result.verdict is Verdict.HOLDS:
            assert result.witness_steps == symbolic.witness_steps
            assert replay_steps(model, result.witness_steps)

    def test_ex_witness_single_step(self):
        model = alternation_model()
        result = check(model, "EX occurs(b)", strategy="explicit")
        assert result.verdict is Verdict.HOLDS
        assert len(result.witness_steps) == 1

    def test_no_witness_for_universal_holds(self):
        result = check(alternation_model(), "AG !deadlock",
                       strategy="explicit")
        assert result.verdict is Verdict.HOLDS
        assert result.witness_steps is None
        assert result.witness() is None

    def test_witness_suppressed_on_request(self):
        result = check(alternation_model(), "EF occurs(b)",
                       strategy="explicit", witness=False)
        assert result.verdict is Verdict.HOLDS
        assert result.witness_steps is None


class TestCheckResult:
    def test_to_doc_shape(self):
        result = check(alternation_model(), "EF occurs(b)",
                       strategy="explicit")
        doc = result.to_doc()
        assert doc["property"] == "EF occurs(b)"
        assert doc["verdict"] == "holds"
        assert doc["strategy"] == "explicit"
        assert doc["witness_kind"] == "witness"
        assert doc["trace"] == [["a"]]
        assert doc["truncated"] is False

    def test_unknown_doc_carries_reason(self):
        model = chain_model(8)
        result = check(model, "AG !deadlock", strategy="explicit",
                       max_states=50)
        doc = result.to_doc()
        assert doc["verdict"] == "unknown"
        assert "truncated" in doc["reason"]
        assert "trace" not in doc

    def test_repr(self):
        result = CheckResult(prop=parse_property("true"),
                             verdict=Verdict.HOLDS, strategy="explicit",
                             states=1, truncated=False, events=[])
        assert "HOLDS" in repr(result)


class TestCaching:
    def test_repeated_explicit_checks_share_one_exploration(self):
        model = chain_model(3)
        assert model.kernel.cache_sizes()["explored_spaces"] == 0
        check(model, "AG !deadlock", strategy="explicit")
        check(model, "EF occurs(a2.start)", strategy="explicit")
        assert model.kernel.cache_sizes()["explored_spaces"] == 1

    def test_repeated_symbolic_checks_share_one_fixpoint(self):
        model = chain_model(3)
        check(model, "AG !deadlock", strategy="symbolic")
        system = model.kernel.transition_system(model)
        checker = system.analysis_cache[("ctl", False)]
        check(model, "EF deadlock", strategy="symbolic")
        assert system.analysis_cache[("ctl", False)] is checker

    def test_budget_keys_the_space_cache(self):
        model = chain_model(4)
        truncated = check(model, "AG !deadlock", strategy="explicit",
                          max_states=5)
        assert truncated.verdict is Verdict.UNKNOWN
        complete = check(model, "AG !deadlock", strategy="explicit")
        assert complete.verdict is Verdict.HOLDS


class TestReplay:
    def test_rejects_non_schedule(self):
        model = alternation_model()
        assert not replay_steps(model, [frozenset({"b"})])
        assert replay_steps(model, [frozenset({"a"}), frozenset({"b"})])

    def test_leaves_model_untouched(self):
        model = alternation_model()
        before = model.configuration()
        replay_steps(model, [frozenset({"a"})])
        assert model.configuration() == before
