"""Tests for execution models: step enumeration, advancing, cloning."""

import pytest

from repro.ccsl import AlternatesRuntime, excludes, subclock
from repro.engine import ExecutionModel
from repro.errors import EngineError
from repro.moccml.semantics import AutomatonRuntime
from tests.moccml.test_ast import place_definition


def place_model(push=1, pop=1, delay=0, capacity=2):
    runtime = AutomatonRuntime(place_definition(), {
        "write": "w", "read": "r", "pushRate": push, "popRate": pop,
        "itsDelay": delay, "itsCapacity": capacity}, label="place")
    return ExecutionModel(["w", "r"], [runtime], name="place-model")


class TestAcceptableSteps:
    def test_unconstrained_model_has_2n_steps(self):
        # paper §II-C: no constraints -> 2^n possible futures
        model = ExecutionModel(["a", "b", "c"])
        assert model.count_acceptable_steps(include_empty=True) == 8
        assert len(model.acceptable_steps(include_empty=True)) == 8

    def test_each_constraint_reduces_the_step_set(self):
        model = ExecutionModel(["a", "b", "c"])
        counts = [model.count_acceptable_steps()]
        model.add_constraint(subclock("a", "b"))
        counts.append(model.count_acceptable_steps())
        model.add_constraint(excludes("b", "c"))
        counts.append(model.count_acceptable_steps())
        assert counts[0] > counts[1] > counts[2]

    def test_empty_place_steps(self):
        model = place_model()
        assert model.acceptable_steps() == [frozenset({"w"})]

    def test_acceptable_steps_deterministic_order(self):
        model = ExecutionModel(["a", "b"])
        steps = model.acceptable_steps(include_empty=True)
        assert steps == [frozenset(), frozenset({"a"}), frozenset({"b"}),
                         frozenset({"a", "b"})]

    def test_is_acceptable(self):
        model = place_model()
        assert model.is_acceptable(frozenset({"w"}))
        assert not model.is_acceptable(frozenset({"r"}))
        assert model.is_acceptable(frozenset())

    def test_unknown_event_in_step(self):
        model = place_model()
        with pytest.raises(EngineError):
            model.is_acceptable(frozenset({"zz"}))


class TestAdvance:
    def test_advance_moves_configuration(self):
        model = place_model()
        before = model.configuration()
        model.advance(frozenset({"w"}))
        assert model.configuration() != before

    def test_advance_rejects_bad_step(self):
        model = place_model()
        with pytest.raises(EngineError):
            model.advance(frozenset({"r"}))

    def test_clone_independent(self):
        model = place_model()
        copy = model.clone()
        model.advance(frozenset({"w"}))
        assert copy.configuration() != model.configuration()
        assert copy.acceptable_steps() == [frozenset({"w"})]


class TestConstruction:
    def test_constraint_over_unknown_event_rejected(self):
        with pytest.raises(EngineError):
            ExecutionModel(["a"], [subclock("a", "ghost")])

    def test_add_constraint_checks_events(self):
        model = ExecutionModel(["a", "b"])
        model.add_constraint(AlternatesRuntime("a", "b"))
        with pytest.raises(EngineError):
            model.add_constraint(subclock("a", "ghost"))

    def test_duplicate_events_deduplicated(self):
        model = ExecutionModel(["a", "a", "b"])
        assert model.events == ["a", "b"]
