"""Tests for simulation campaigns."""

from repro.engine.campaign import (
    CampaignRow,
    default_policies,
    format_campaign,
    run_campaign,
)
from repro.sdf import SdfBuilder, build_execution_model


def pipeline_model():
    builder = SdfBuilder("pipe")
    builder.agent("a")
    builder.agent("b")
    builder.connect("a", "b", capacity=2)
    model, _app = builder.build()
    return build_execution_model(model).execution_model


class TestCampaign:
    def test_rows_per_policy_kind(self):
        rows = run_campaign(pipeline_model(), steps=20,
                            watch_events=["b.start"])
        names = {row.policy for row in rows}
        assert names == {"asap", "minimal", "random"}
        random_row = next(row for row in rows if row.policy == "random")
        assert random_row.runs == 5  # default seeds

    def test_model_not_mutated(self):
        model = pipeline_model()
        before = model.configuration()
        run_campaign(model, steps=10, watch_events=["b.start"])
        assert model.configuration() == before

    def test_throughput_recorded(self):
        rows = run_campaign(pipeline_model(), steps=30,
                            watch_events=["a.start", "b.start"])
        for row in rows:
            assert set(row.throughput) == {"a.start", "b.start"}
            assert 0.0 <= row.throughput["b.start"] <= 1.0
            assert row.deadlock_rate == 0.0

    def test_asap_dominates_minimal_on_parallel_model(self):
        builder = SdfBuilder("wide")
        for index in range(3):
            builder.agent(f"src{index}")
            builder.agent(f"dst{index}")
            builder.connect(f"src{index}", f"dst{index}", capacity=2)
        model, _app = builder.build()
        engine_model = build_execution_model(model).execution_model
        rows = {row.policy: row for row in run_campaign(
            engine_model, steps=20, watch_events=["dst0.start"])}
        assert rows["asap"].mean_parallelism \
            > rows["minimal"].mean_parallelism

    def test_format_table(self):
        rows = [CampaignRow(policy="asap", runs=1, steps=10,
                            deadlock_rate=0.0, mean_parallelism=2.5,
                            throughput={"x": 0.5})]
        table = format_campaign(rows)
        assert "asap" in table
        assert "0.5000" in table

    def test_custom_policies(self):
        from repro.engine import RandomPolicy
        rows = run_campaign(pipeline_model(), steps=10,
                            watch_events=["b.start"],
                            policies=[RandomPolicy(seed=1),
                                      RandomPolicy(seed=2)])
        assert len(rows) == 1
        assert rows[0].runs == 2

    def test_default_policies_structure(self):
        policies = default_policies(seeds=3)
        assert len(policies) == 5
