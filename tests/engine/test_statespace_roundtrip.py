"""StateSpace JSON round-trips and maximal-only exploration agreement."""

import pytest

from repro.ccsl import AlternatesRuntime, PrecedesRuntime
from repro.engine import ExecutionModel, StateSpace, explore
from repro.errors import SerializationError
from repro.sdf import SdfBuilder, build_execution_model


def sdf_chain(length=3, capacity=2):
    builder = SdfBuilder(f"rt-chain{length}")
    for index in range(length):
        builder.agent(f"a{index}")
    for index in range(length - 1):
        builder.connect(f"a{index}", f"a{index+1}", capacity=capacity)
    model, _app = builder.build()
    return build_execution_model(model).execution_model


class TestToFromJson:
    def test_round_trip_preserves_everything(self):
        space = explore(sdf_chain(), max_states=5000)
        reloaded = StateSpace.from_json(space.to_json())
        assert reloaded.name == space.name
        assert reloaded.initial == space.initial
        assert reloaded.truncated == space.truncated
        assert reloaded.events == space.events
        assert reloaded.summary() == space.summary()
        for node, data in space.graph.nodes(data=True):
            rdata = reloaded.graph.nodes[node]
            assert rdata["accepting"] == data["accepting"]
            assert rdata["depth"] == data["depth"]
        edges = sorted((u, v, tuple(sorted(d["step"])))
                       for u, v, d in space.graph.edges(data=True))
        redges = sorted((u, v, tuple(sorted(d["step"])))
                        for u, v, d in reloaded.graph.edges(data=True))
        assert edges == redges

    def test_round_trip_preserves_frontier_and_truncated(self):
        # unbounded precedence -> infinite space -> truncation via depth
        model = ExecutionModel(["a", "b"], [PrecedesRuntime("a", "b")])
        space = explore(model, max_states=5000, max_depth=3)
        assert space.truncated
        frontier = {node for node, data in space.graph.nodes(data=True)
                    if data.get("frontier")}
        assert frontier, "depth-bounded exploration must mark frontier nodes"
        reloaded = StateSpace.from_json(space.to_json())
        assert reloaded.truncated
        refrontier = {node for node, data
                      in reloaded.graph.nodes(data=True)
                      if data.get("frontier")}
        assert refrontier == frontier
        # frontier nodes are not deadlocks in either copy
        assert reloaded.deadlocks() == space.deadlocks()
        assert reloaded.summary() == space.summary()

    def test_round_trip_after_state_budget_truncation(self):
        model = ExecutionModel(["a", "b"], [PrecedesRuntime("a", "b")])
        space = explore(model, max_states=4)
        assert space.truncated
        reloaded = StateSpace.from_json(space.to_json())
        assert reloaded.truncated
        assert reloaded.summary() == space.summary()

    def test_double_round_trip_is_stable(self):
        space = explore(sdf_chain(length=2), max_states=1000)
        once = space.to_json()
        assert StateSpace.from_json(once).to_json() == once

    def test_from_json_rejects_garbage(self):
        with pytest.raises(SerializationError):
            StateSpace.from_json("not json at all {")
        with pytest.raises(SerializationError):
            StateSpace.from_json('{"kind": "trace"}')


class TestMaximalOnlyAgreement:
    @pytest.mark.parametrize("length,capacity", [(3, 1), (3, 2), (4, 2)])
    def test_max_parallelism_matches_full_space(self, length, capacity):
        model = sdf_chain(length=length, capacity=capacity)
        full = explore(model, max_states=50000)
        reduced = explore(model, max_states=50000, maximal_only=True)
        assert not full.truncated and not reduced.truncated
        assert reduced.max_parallelism() == full.max_parallelism()
        assert reduced.n_transitions <= full.n_transitions
        # every maximal-only step also labels a full-space transition
        assert reduced.distinct_steps() <= full.distinct_steps()

    def test_ccsl_model_agreement(self):
        model = ExecutionModel(
            ["a", "b", "c"],
            [AlternatesRuntime("a", "b"), AlternatesRuntime("b", "c")])
        full = explore(model, max_states=10000)
        reduced = explore(model, max_states=10000, maximal_only=True)
        assert reduced.max_parallelism() == full.max_parallelism()
