"""Encodability predictor: verdicts, auto-strategy routing, telemetry."""

import pytest

from repro.engine import explore
from repro.engine.ctl import check
from repro.engine.encodability import (
    is_encodable,
    predict,
    telemetry_reset,
    telemetry_snapshot,
)
from repro.errors import SymbolicEncodingError
from repro.workbench import CcslSpec, load


def ccsl_model(name, events, constraints):
    return load(CcslSpec(name=name, events=events,
                         constraints=constraints)).execution_model


@pytest.fixture()
def unbounded():
    """Unbounded Precedes: no finite local encoding exists."""
    return ccsl_model("unb", [f"e{i}" for i in range(12)],
                      [("Precedes", ("e0", "e1"))])


@pytest.fixture()
def bounded():
    return ccsl_model("bnd", [f"e{i}" for i in range(12)],
                      [("Alternates", ("e0", "e1"))])


class TestPredict:
    def test_unbounded_precedes_is_unencodable(self, unbounded):
        report = predict(unbounded)
        assert not report.encodable
        assert report.blockers
        assert "every constraint" not in report.reason

    def test_alternates_is_encodable(self, bounded):
        report = predict(bounded)
        assert report.encodable
        assert report.blockers == []
        doc = report.to_doc()
        assert doc["encodable"] is True
        assert all(v["encodable"] for v in doc["constraints"])

    def test_prediction_matches_compile(self, unbounded, bounded):
        from repro.engine.symbolic import TransitionSystem

        with pytest.raises(SymbolicEncodingError):
            TransitionSystem(unbounded.clone())
        TransitionSystem(bounded.clone())  # must not raise
        assert not is_encodable(unbounded)
        assert is_encodable(bounded)


class TestAutoRouting:
    """strategy='auto' consults the predictor instead of compiling
    blind; the SymbolicEncodingError handler stays as a safety net."""

    def test_explore_auto_skips_doomed_compile(self, unbounded):
        telemetry_reset()
        space = explore(unbounded, strategy="auto", max_states=50)
        assert space.truncated
        snapshot = telemetry_snapshot()
        assert snapshot["predicted_unencodable"] == 1
        assert snapshot["safety_net_raises"] == 0

    def test_check_auto_routes_to_explicit(self, unbounded):
        telemetry_reset()
        result = check(unbounded, "EF occurs(e1)", strategy="auto",
                       max_states=50)
        assert result.verdict.name == "HOLDS"
        assert telemetry_snapshot()["safety_net_raises"] == 0

    def test_symbolic_strategy_still_raises(self, unbounded):
        with pytest.raises(SymbolicEncodingError):
            explore(unbounded, strategy="symbolic")

    def test_safety_net_counts_predictor_misses(self, unbounded,
                                                monkeypatch):
        import repro.engine.encodability as encodability

        telemetry_reset()
        monkeypatch.setattr(encodability, "is_encodable",
                            lambda model: True)  # predictor lies
        space = explore(unbounded, strategy="auto", max_states=50)
        assert space.truncated  # explicit fallback still explored
        assert telemetry_snapshot()["safety_net_raises"] == 1


class TestServeAdmission:
    def test_cache_entry_carries_the_verdict(self):
        from repro.serve.metrics import Metrics
        from repro.serve.state import ModelCache

        metrics = Metrics()
        cache = ModelCache(metrics=metrics)
        entry = cache.acquire({
            "frontend": "ccsl", "name": "unb",
            "events": ["a", "b"],
            "constraints": [["Precedes", ["a", "b"]]],
        })
        assert entry.encodable is False
        assert entry.describe()["encodable"] is False
        counters = metrics.snapshot()["counters"]
        assert counters["model_predicted_unencodable"] == 1

    def test_injected_loader_without_model_is_none(self):
        from repro.serve.state import ModelCache

        class Bare:
            name = "bare"

        cache = ModelCache(loader=lambda doc: Bare())
        entry = cache.acquire({"anything": 1})
        assert entry.encodable is None
