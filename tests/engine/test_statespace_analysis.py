"""Tests for state-space metrics, analyses, latency and projections."""

import pytest

from repro.engine import (
    AsapPolicy,
    ExecutionModel,
    Simulator,
    Trace,
    event_liveness,
    explore,
    parallelism_profile,
)
from repro.engine.analysis import occurrence_latency
from repro.engine.explorer import _maximal_steps
from repro.sdf import SdfBuilder, build_execution_model


def pipeline_space(maximal_only=False, length=3, capacity=2):
    builder = SdfBuilder("pipe")
    for index in range(length):
        builder.agent(f"a{index}")
    for index in range(length - 1):
        builder.connect(f"a{index}", f"a{index+1}", capacity=capacity)
    model, _app = builder.build()
    return explore(build_execution_model(model).execution_model,
                   maximal_only=maximal_only, max_states=50_000)


class TestStateSpaceMetrics:
    def test_summary_keys(self):
        space = pipeline_space()
        summary = space.summary()
        assert set(summary) == {
            "states", "transitions", "distinct_steps", "deadlocks",
            "max_parallelism", "mean_branching", "dead_events", "truncated"}

    def test_mean_branching(self):
        space = pipeline_space()
        assert space.mean_branching() == pytest.approx(
            space.n_transitions / space.n_states)

    def test_recurrent_components_exist_for_live_system(self):
        space = pipeline_space()
        components = space.recurrent_components()
        assert components
        assert all(len(c) >= 1 for c in components)

    def test_self_loop_counts_as_recurrent(self):
        model = ExecutionModel(["a"])
        space = explore(model)
        # single state with {a} self-loop
        assert space.n_states == 1
        assert space.recurrent_components() == [{0}]

    def test_event_liveness(self):
        space = pipeline_space()
        liveness = event_liveness(space)
        assert liveness["a0.start"] is True
        assert liveness["a0.isExecuting"] is False  # cycles = 0

    def test_parallelism_profile(self):
        space = pipeline_space()
        profile = parallelism_profile(space)
        assert profile["max"] >= 3.0
        assert 0 < profile["mean"] <= profile["max"]
        assert profile["transitions"] == float(space.n_transitions)


class TestMaximalOnlyExploration:
    def test_reduces_transitions(self):
        full = pipeline_space(maximal_only=False)
        reduced = pipeline_space(maximal_only=True)
        assert reduced.n_transitions < full.n_transitions
        assert reduced.n_states <= full.n_states

    def test_preserves_peak_parallelism(self):
        full = pipeline_space(maximal_only=False)
        reduced = pipeline_space(maximal_only=True)
        assert reduced.max_parallelism() == full.max_parallelism()

    def test_maximal_steps_helper(self):
        steps = [frozenset(), frozenset({"a"}), frozenset({"b"}),
                 frozenset({"a", "b"})]
        assert _maximal_steps(steps) == [frozenset({"a", "b"})]
        incomparable = [frozenset({"a"}), frozenset({"b"})]
        assert _maximal_steps(incomparable) == incomparable


class TestLatency:
    def test_pipeline_latency(self):
        builder = SdfBuilder("duo")
        builder.agent("src")
        builder.agent("dst")
        builder.connect("src", "dst", capacity=2)
        model, _app = builder.build()
        result = Simulator(build_execution_model(model).execution_model,
                           AsapPolicy()).run(10)
        latencies = occurrence_latency(result.trace, "src.start",
                                       "dst.start")
        assert latencies
        assert all(value >= 1 for value in latencies)  # rw exclusion

    def test_latency_pairs_in_order(self):
        trace = Trace(["c", "e"])
        for step in ({"c"}, set(), {"e", "c"}, {"e"}):
            trace.append(frozenset(step))
        assert occurrence_latency(trace, "c", "e") == [2, 1]

    def test_unmatched_causes_ignored(self):
        trace = Trace(["c", "e"])
        trace.append(frozenset({"c"}))
        trace.append(frozenset({"c"}))
        trace.append(frozenset({"e"}))
        assert occurrence_latency(trace, "c", "e") == [2]


class TestTraceProjection:
    def test_project_restricts_events(self):
        trace = Trace(["a", "b", "c"])
        trace.append(frozenset({"a", "b"}))
        trace.append(frozenset({"c"}))
        projected = trace.project(["a", "c"])
        assert projected.events == ["a", "c"]
        assert list(projected) == [frozenset({"a"}), frozenset({"c"})]

    def test_project_preserves_length(self):
        trace = Trace(["a", "b"])
        trace.append(frozenset({"b"}))
        projected = trace.project(["a"])
        assert len(projected) == 1
        assert projected[0] == frozenset()

    def test_ascii_window(self):
        trace = Trace(["x"])
        for index in range(10):
            trace.append(frozenset({"x"} if index % 2 == 0 else set()))
        art = trace.to_ascii(start=4, width=4)
        lines = art.splitlines()
        assert lines[1].endswith("X.X.")

    def test_vcd_many_events(self):
        # exercise multi-character VCD identifiers (> 94 events)
        events = [f"e{i}" for i in range(100)]
        trace = Trace(events)
        trace.append(frozenset({"e99"}))
        vcd = trace.to_vcd()
        assert "$var wire 1" in vcd
        # identifiers must be unique
        ids = [line.split()[3]
               for line in vcd.splitlines() if line.startswith("$var")]
        assert len(set(ids)) == 100


class TestVariableBoundsMore:
    def test_bounds_with_deployment_comm_delay(self):
        from repro.deployment import CommDelayRuntime
        model = ExecutionModel(
            ["w", "r"],
            [CommDelayRuntime("w", "r", push=1, pop=1, latency=1)])
        space = explore(model, max_states=50)
        # CommDelay is not an AutomatonRuntime: bounds just stay empty
        from repro.engine import variable_bounds
        assert variable_bounds(model, space) == {}
