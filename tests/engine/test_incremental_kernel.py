"""The incremental symbolic kernel: dirty tracking, snapshot/restore,
kernel sharing across clones, and the bounded per-model caches."""

import pytest

from repro.ccsl import (
    AlternatesRuntime,
    CausesRuntime,
    DeadlineRuntime,
    DelayedForRuntime,
    FilterByRuntime,
    PeriodicOnRuntime,
    PrecedesRuntime,
    SampledOnRuntime,
    subclock,
)
from repro.deployment.mocc import CommDelayRuntime, ProcessorMutexRuntime
from repro.engine import (
    AsapPolicy,
    ExecutionModel,
    Simulator,
    explore,
    simulated_throughput,
)
from repro.errors import EngineError
from repro.moccml.semantics import AutomatonRuntime
from repro.moccml.semantics.runtime import CompositeRuntime, FormulaRuntime
from tests.moccml.test_ast import place_definition


def place_runtime(**bindings):
    defaults = {"write": "w", "read": "r", "pushRate": 1, "popRate": 1,
                "itsDelay": 0, "itsCapacity": 2}
    defaults.update(bindings)
    return AutomatonRuntime(place_definition(), defaults, label="place")


def all_runtime_samples():
    """One advanced-then-advanced-again instance per runtime family."""
    return [
        (PrecedesRuntime("a", "b"), [{"a"}, {"a"}, {"b"}]),
        (PrecedesRuntime("a", "b", bound=2), [{"a"}, {"a"}]),
        (CausesRuntime("a", "b"), [{"a"}, {"a", "b"}]),
        (AlternatesRuntime("a", "b"), [{"a"}, {"b"}]),
        (DelayedForRuntime("b", "a", 2), [{"a"}, {"a"}, {"a", "b"}]),
        (PeriodicOnRuntime("b", "a", 3), [{"a", "b"}, {"a"}]),
        (SampledOnRuntime("b", "t", "a"), [{"t"}, {"a", "b"}]),
        (FilterByRuntime("b", "a", "1(10)"), [{"a", "b"}, {"a", "b"}]),
        (DeadlineRuntime("a", "b", 1), [{"a"}, set(), {"b"}]),
        (ProcessorMutexRuntime("p", {"x": ("xs", "xe"), "y": ("ys", "ye")}),
         [{"xs"}, {"xe"}]),
        (CommDelayRuntime("w", "r", 1, 1, 2), [{"w"}, set(), {"r"}]),
        (FormulaRuntime("sub", subclock("a", "b").step_formula()),
         [{"b"}, {"a", "b"}]),
        (CompositeRuntime("pair", [PrecedesRuntime("a", "b"),
                                   CausesRuntime("a", "c")]),
         [{"a"}, {"a", "b", "c"}]),
        (place_runtime(), [{"w"}, {"r"}]),
    ]


class TestSnapshotRestoreProtocol:
    @pytest.mark.parametrize(
        "runtime,steps", all_runtime_samples(),
        ids=lambda value: value.label if hasattr(value, "label") else None)
    def test_round_trip_restores_state_exactly(self, runtime, steps):
        mid = len(steps) // 2
        for step in steps[:mid]:
            runtime.advance(frozenset(step))
        token = runtime.snapshot()
        key_at_token = runtime.state_key()
        formula_at_token = runtime.step_formula()
        for step in steps[mid:]:
            runtime.advance(frozenset(step))
        runtime.restore(token)
        assert runtime.state_key() == key_at_token
        assert runtime.step_formula() == formula_at_token
        # the token survives a second divergence + restore
        for step in steps[mid:]:
            runtime.advance(frozenset(step))
        runtime.restore(token)
        assert runtime.state_key() == key_at_token

    @pytest.mark.parametrize(
        "runtime,steps", all_runtime_samples(),
        ids=lambda value: value.label if hasattr(value, "label") else None)
    def test_version_constant_implies_same_formula(self, runtime, steps):
        seen = {}
        seen[runtime.formula_version()] = runtime.step_formula()
        for step in steps:
            runtime.advance(frozenset(step))
            version = runtime.formula_version()
            formula = runtime.step_formula()
            if version in seen:
                assert seen[version] == formula, (
                    f"{runtime.label}: same version, different formula")
            seen[version] = formula

    def test_formula_runtime_version_is_static(self):
        runtime = FormulaRuntime("sub", subclock("a", "b").step_formula())
        before = runtime.formula_version()
        runtime.advance(frozenset({"b"}))
        assert runtime.formula_version() == before


class TestModelSnapshotRestore:
    def model(self):
        return ExecutionModel(
            ["w", "r"], [place_runtime(),
                         PrecedesRuntime("w", "r", bound=3)],
            name="snap-model")

    def test_round_trip(self):
        model = self.model()
        token = model.snapshot()
        initial_key = model.configuration()
        model.advance(frozenset({"w"}))
        model.advance(frozenset({"r"}))
        assert model.configuration() != initial_key or True  # advanced
        model.restore(token)
        assert model.configuration() == initial_key

    def test_restore_agrees_with_clone(self):
        model = self.model()
        pristine = model.clone()
        token = model.snapshot()
        model.advance(frozenset({"w"}))
        model.restore(token)
        assert model.configuration() == pristine.configuration()
        assert model.acceptable_steps() == pristine.acceptable_steps()

    def test_arity_mismatch_raises(self):
        model = self.model()
        with pytest.raises(EngineError):
            model.restore((None,))


class TestKernelSharingAndDirtyTracking:
    def test_static_constraint_compiles_once(self):
        model = ExecutionModel(
            ["a", "b"],
            [FormulaRuntime("sub", subclock("a", "b").step_formula())])
        model.acceptable_steps()
        misses = model.kernel.stats["node_misses"]
        for _ in range(5):
            model.advance(frozenset({"b"}))
            model.acceptable_steps()
        assert model.kernel.stats["node_misses"] == misses

    def test_versions_bound_recompilation(self):
        # bounded precedence has three formula regimes -> <= 3 compiles
        model = ExecutionModel(["a", "b"],
                               [PrecedesRuntime("a", "b", bound=3)])
        for step in ({"a"}, {"a"}, {"a"}, {"b"}, {"a"}, {"b"}, {"b"}):
            model.acceptable_steps()
            model.advance(frozenset(step))
        model.acceptable_steps()
        assert model.kernel.stats["node_misses"] <= 3

    def test_clone_shares_kernel_and_diverges_independently(self):
        one = ExecutionModel(["a", "b"], [AlternatesRuntime("a", "b")])
        one.acceptable_steps()
        two = one.clone()
        assert two.kernel is one.kernel
        hits = one.kernel.stats["steps_hits"]
        assert two.acceptable_steps() == one.acceptable_steps()
        assert one.kernel.stats["steps_hits"] > hits  # clone reused it
        one.advance(frozenset({"a"}))
        assert one.acceptable_steps() != two.acceptable_steps()

    def test_add_constraint_detaches_kernel(self):
        model = ExecutionModel(["a", "b"])
        kernel = model.kernel
        model.acceptable_steps()
        model.add_constraint(AlternatesRuntime("a", "b"))
        assert model.kernel is not kernel
        assert model.acceptable_steps() == [frozenset({"a"})]

    def test_clear_caches_preserves_results(self):
        model = ExecutionModel(["a", "b"], [AlternatesRuntime("a", "b")])
        before = model.acceptable_steps()
        model.clear_caches()
        assert model.acceptable_steps() == before

    def test_steps_cache_is_bounded(self):
        model = ExecutionModel(["a", "b"],
                               [PrecedesRuntime("a", "b", bound=2)])
        model.kernel._steps_cache.maxsize = 2
        for step in ({"a"}, {"a"}, {"b"}, {"b"}, {"a"}):
            model.acceptable_steps()
            model.acceptable_steps(include_empty=True)
            model.advance(frozenset(step))
        assert len(model.kernel._steps_cache) <= 2

    def test_max_step_cached_value_correct(self):
        model = ExecutionModel(["a", "b"], [AlternatesRuntime("a", "b")])
        assert model.max_step() == frozenset({"a"})
        assert model.max_step() == frozenset({"a"})  # cached path
        model.advance(frozenset({"a"}))
        assert model.max_step() == frozenset({"b"})


class TestDriversOnTheKernel:
    def model(self):
        return ExecutionModel(
            ["w", "r"], [place_runtime(itsCapacity=3)], name="drv")

    def test_explore_leaves_input_model_untouched(self):
        model = self.model()
        before = model.configuration()
        explore(model, max_states=1000)
        assert model.configuration() == before

    def test_explore_is_deterministic_and_repeatable(self):
        model = self.model()
        first = explore(model, max_states=1000)
        second = explore(model, max_states=1000)
        assert first.to_json() == second.to_json()

    def test_simulation_matches_symbolic_and_enumerated_asap(self):
        wide = Simulator(self.model(), AsapPolicy(symbolic_threshold=0))
        narrow = Simulator(self.model(), AsapPolicy(symbolic_threshold=99))
        assert wide.run(10).trace.steps == narrow.run(10).trace.steps

    def test_simulated_throughput_leaves_model_untouched(self):
        model = self.model()
        before = model.configuration()
        rates = simulated_throughput(model, ["w", "r"], steps=20)
        assert model.configuration() == before
        assert rates["w"] > 0


class TestBoundedExprMemo:
    """The kernel Bdd's from_expr memo must stay bounded when clones are
    created and discarded in bulk (dead clones' formulas must be evicted
    rather than pinned forever)."""

    def test_memo_bounded_across_1k_clone_discard_cycles(self):
        from repro.boolalg import Or, Var
        from repro.boolalg.bdd import Bdd
        model = ExecutionModel(
            ["a", "b"], [PrecedesRuntime("a", "b", bound=4)],
            name="cycles")
        kernel = model.kernel
        original = Bdd._EXPR_CACHE_LIMIT
        try:
            Bdd._EXPR_CACHE_LIMIT = limit = 256
            for cycle in range(1_000):
                clone = model.clone()  # shares the kernel
                clone.acceptable_steps()
                clone.advance(frozenset({"a"}), check=False)
                clone.acceptable_steps()
                # a fresh formula per cycle simulates structurally new
                # expressions flowing through the shared manager
                kernel.bdd.from_expr(Or(Var(f"g{cycle}"), Var("a")))
                del clone  # the dead clone must not pin its formulas
                assert kernel.bdd.cache_sizes()["expr"] <= limit
        finally:
            Bdd._EXPR_CACHE_LIMIT = original

    def test_clear_caches_detaches_dead_kernel(self):
        model = ExecutionModel(
            ["a", "b"], [PrecedesRuntime("a", "b", bound=2)], name="det")
        model.acceptable_steps()
        old_kernel = model.kernel
        model.clear_caches()
        assert model.kernel is not old_kernel
