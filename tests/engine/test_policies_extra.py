"""Tests for replay policy, observers and the symbolic ASAP fast path."""

import pytest

from repro.ccsl import AlternatesRuntime
from repro.engine import (
    AsapPolicy,
    ExecutionModel,
    ReplayPolicy,
    Simulator,
)
from repro.errors import EngineError
from repro.sdf import SdfBuilder, build_execution_model


def alternation_model():
    return ExecutionModel(["a", "b"], [AlternatesRuntime("a", "b")])


class TestReplayPolicy:
    def test_replay_reproduces_trace(self):
        original = Simulator(alternation_model(), AsapPolicy()).run(6)
        replayed = Simulator(alternation_model(),
                             ReplayPolicy(original.trace)).run(10)
        assert list(replayed.trace) == list(original.trace)
        # recording exhausted after 6 steps -> reported as stop
        assert replayed.steps_run == 6

    def test_replay_detects_divergence(self):
        # record on a free model, replay against the alternation MoCC
        free_trace = [frozenset({"a"}), frozenset({"a"})]
        simulator = Simulator(alternation_model(), ReplayPolicy(free_trace))
        with pytest.raises(EngineError):
            simulator.run(5)

    def test_replay_infinite_trace_against_deployment(self):
        # the infinite-resource schedule is NOT valid on a mono-processor:
        # in a 3-chain, a0 and a2 (no shared place) fire together freely
        from repro.deployment import Allocation, Platform, deploy

        def build():
            builder = SdfBuilder("tri")
            for index in range(3):
                builder.agent(f"a{index}")
            builder.connect("a0", "a1", capacity=2)
            builder.connect("a1", "a2", capacity=2)
            return builder.build()

        model, _app = build()
        free = build_execution_model(model).execution_model
        free_run = Simulator(free, AsapPolicy()).run(10)
        parallel_steps = [
            step for step in free_run.trace
            if sum(1 for e in step if e.endswith(".start")) > 1]
        assert parallel_steps  # the free run does fire agents together

        model2, app2 = build()
        platform = Platform("mono")
        platform.processor("cpu")
        deployed = deploy(model2, app2, platform,
                          Allocation({f"a{i}": "cpu" for i in range(3)}))
        simulator = Simulator(deployed.execution_model,
                              ReplayPolicy(free_run.trace))
        with pytest.raises(EngineError):
            simulator.run(len(free_run.trace))


class TestObservers:
    def test_observer_called_per_step(self):
        seen = []
        Simulator(alternation_model(), AsapPolicy()).run(
            4, observers=[lambda i, step, model: seen.append((i, step))])
        assert [i for i, _ in seen] == [0, 1, 2, 3]
        assert seen[0][1] == frozenset({"a"})

    def test_observer_sees_model_state(self):
        sizes = []

        def watch(_index, _step, model):
            constraint = model.constraints[0]
            sizes.append(constraint.advance_count)

        Simulator(alternation_model(), AsapPolicy()).run(
            4, observers=[watch])
        assert sizes == [1, 0, 1, 0]


class TestSymbolicAsap:
    def test_fast_path_matches_enumeration_on_maximality(self):
        # same model driven with both thresholds: step cardinalities agree
        builder = SdfBuilder("chain")
        for index in range(4):
            builder.agent(f"a{index}")
        for index in range(3):
            builder.connect(f"a{index}", f"a{index+1}", capacity=2)
        model, _app = builder.build()

        enumerating = Simulator(
            build_execution_model(model).execution_model,
            AsapPolicy(symbolic_threshold=10_000)).run(15)
        symbolic = Simulator(
            build_execution_model(model).execution_model,
            AsapPolicy(symbolic_threshold=0)).run(15)
        enum_sizes = [len(step) for step in enumerating.trace]
        symb_sizes = [len(step) for step in symbolic.trace]
        assert enum_sizes == symb_sizes

    def test_max_step_none_on_deadlock(self):
        from repro.ccsl import PrecedesRuntime
        model = ExecutionModel(
            ["a", "b"], [PrecedesRuntime("a", "b"),
                         PrecedesRuntime("b", "a")])
        assert model.max_step() is None

    def test_max_step_is_acceptable_and_maximal(self):
        builder = SdfBuilder("duo")
        builder.agent("x")
        builder.agent("y")
        builder.connect("x", "y", capacity=2, delay=1)
        model, _app = builder.build()
        engine_model = build_execution_model(model).execution_model
        step = engine_model.max_step()
        assert engine_model.is_acceptable(step)
        best = max(engine_model.acceptable_steps(), key=len)
        assert len(step) == len(best)
