"""Tests for state-space persistence, model copy, and failure injection."""

import pytest

from repro.boolalg.expr import TRUE
from repro.ccsl import AlternatesRuntime
from repro.engine import (
    AsapPolicy,
    ExecutionModel,
    Simulator,
    StateSpace,
    explore,
)
from repro.errors import SemanticsError, SerializationError
from repro.moccml.semantics.runtime import ConstraintRuntime
from repro.sdf import SdfBuilder, build_execution_model


class TestStateSpacePersistence:
    def space(self):
        builder = SdfBuilder("pipe")
        builder.agent("a")
        builder.agent("b")
        builder.connect("a", "b", capacity=2)
        model, _app = builder.build()
        return explore(build_execution_model(model).execution_model)

    def test_roundtrip_preserves_metrics(self):
        space = self.space()
        back = StateSpace.from_json(space.to_json())
        assert back.n_states == space.n_states
        assert back.n_transitions == space.n_transitions
        assert back.max_parallelism() == space.max_parallelism()
        assert back.deadlocks() == space.deadlocks()
        assert back.distinct_steps() == space.distinct_steps()
        assert back.initial == space.initial
        assert back.events == space.events

    def test_roundtrip_preserves_analyses(self):
        from repro.engine import max_cycle_mean_throughput
        space = self.space()
        back = StateSpace.from_json(space.to_json())
        assert max_cycle_mean_throughput(back, "b.start") == \
            max_cycle_mean_throughput(space, "b.start")

    def test_bad_documents(self):
        with pytest.raises(SerializationError):
            StateSpace.from_json("{nope")
        with pytest.raises(SerializationError):
            StateSpace.from_json('{"kind": "other", "format": 1}')
        with pytest.raises(SerializationError):
            StateSpace.from_json(
                '{"kind": "statespace", "format": 9, "name": "x"}')


class TestModelCopy:
    def test_copy_is_structural_twin(self):
        builder = SdfBuilder("orig")
        builder.agent("p", cycles=2)
        builder.agent("q")
        builder.connect("p", "q", push=2, pop=1, capacity=3)
        model, app = builder.build()
        twin = model.copy("twin")
        assert len(twin) == len(model)
        twin_app = twin.roots[0]
        assert twin_app is not app
        assert [a.name for a in twin_app.get("agents")] == ["p", "q"]
        twin_place = twin_app.get("places")[0]
        assert twin_place.get("capacity") == 3
        # references were remapped into the copy
        assert twin_place.get("outputPort").get("agent") \
            is twin_app.get("agents")[0]

    def test_copy_is_independent(self):
        builder = SdfBuilder("orig")
        builder.agent("x")
        model, app = builder.build()
        twin = model.copy()
        app.get("agents")[0].set("cycles", 9)
        assert twin.roots[0].get("agents")[0].get("cycles") == 0

    def test_copy_weaves_identically(self):
        builder = SdfBuilder("orig")
        builder.agent("a")
        builder.agent("b")
        builder.connect("a", "b", capacity=2)
        model, _app = builder.build()
        original = explore(build_execution_model(model).execution_model)
        copied = explore(
            build_execution_model(model.copy()).execution_model)
        assert original.n_states == copied.n_states
        assert original.n_transitions == copied.n_transitions


class _FaultyConstraint(ConstraintRuntime):
    """A constraint whose advance always explodes — failure injection."""

    def __init__(self):
        super().__init__("faulty", ("a",))

    def step_formula(self):
        return TRUE

    def advance(self, step):
        raise SemanticsError("injected failure")

    def state_key(self):
        return ("faulty",)

    def clone(self):
        return _FaultyConstraint()


class TestFailureInjection:
    def test_simulator_surfaces_constraint_failure(self):
        model = ExecutionModel(["a"], [_FaultyConstraint()])
        with pytest.raises(SemanticsError, match="injected failure"):
            Simulator(model, AsapPolicy()).run(3)

    def test_explorer_surfaces_constraint_failure(self):
        model = ExecutionModel(["a"], [_FaultyConstraint()])
        with pytest.raises(SemanticsError):
            explore(model, max_states=10)

    def test_half_advanced_state_is_detectable(self):
        # a failing constraint leaves earlier constraints advanced; the
        # engine propagates the error so callers can discard the model
        alternation = AlternatesRuntime("a", "b")
        model = ExecutionModel(["a", "b"],
                               [alternation, _FaultyConstraint()])
        model.add_event("a")
        with pytest.raises(SemanticsError):
            model.advance(frozenset({"a"}))
        assert alternation.advance_count == 1  # documented behaviour


class TestCliCampaign:
    def test_campaign_command(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "app.sigpml"
        path.write_text(
            "application c {\n agent a\n agent b\n"
            " place a -> b capacity 2\n}\n")
        assert main(["campaign", str(path), "--steps", "10",
                     "--watch", "b.start"]) == 0
        out = capsys.readouterr().out
        assert "asap" in out
        assert "b.start" in out
