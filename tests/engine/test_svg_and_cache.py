"""Tests for SVG export, the step cache, and policy edge cases."""

import pytest

from repro.boolalg.expr import TRUE
from repro.ccsl import AlternatesRuntime
from repro.engine import (
    AsapPolicy,
    ExecutionModel,
    MinimalPolicy,
    PriorityPolicy,
    Simulator,
    Trace,
)
from repro.errors import EngineError


class TestSvgExport:
    def test_structure(self):
        trace = Trace(["tick", "tock"])
        trace.append(frozenset({"tick"}))
        trace.append(frozenset({"tock"}))
        svg = trace.to_svg()
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert "tick" in svg and "tock" in svg
        # two waveform paths
        assert svg.count("<path") == 2

    def test_event_subset(self):
        trace = Trace(["a", "b"])
        trace.append(frozenset({"a"}))
        svg = trace.to_svg(events=["a"])
        assert svg.count("<path") == 1

    def test_empty_trace(self):
        trace = Trace(["a"])
        svg = trace.to_svg()
        assert "<svg" in svg


class TestStepsCache:
    def test_cache_returns_copies(self):
        model = ExecutionModel(["a", "b"], [AlternatesRuntime("a", "b")])
        first = model.acceptable_steps()
        first.append(frozenset({"zzz"}))  # mutate the returned list
        second = model.acceptable_steps()
        assert frozenset({"zzz"}) not in second

    def test_cache_hit_same_formula(self):
        # two models with identical constraints share cached entries and
        # still behave independently
        one = ExecutionModel(["a", "b"], [AlternatesRuntime("a", "b")])
        two = ExecutionModel(["a", "b"], [AlternatesRuntime("a", "b")])
        assert one.acceptable_steps() == two.acceptable_steps()
        one.advance(frozenset({"a"}))
        assert one.acceptable_steps() != two.acceptable_steps()


class TestPolicyEdges:
    def test_priority_prefers_weighted_event(self):
        policy = PriorityPolicy({"b": 5})
        step = policy.choose([frozenset({"a"}), frozenset({"b"})], 0)
        assert step == frozenset({"b"})

    def test_priority_tie_breaks_to_larger_step(self):
        policy = PriorityPolicy({})
        step = policy.choose([frozenset({"a"}), frozenset({"a", "b"})], 0)
        assert step == frozenset({"a", "b"})

    def test_minimal_ignores_empty_candidate(self):
        policy = MinimalPolicy()
        step = policy.choose([frozenset(), frozenset({"a", "b"})], 0)
        assert step == frozenset({"a", "b"})

    def test_policies_require_candidates(self):
        for policy in (AsapPolicy(), MinimalPolicy(), PriorityPolicy({})):
            with pytest.raises(EngineError):
                policy.choose([], 0)

    def test_simulator_final_accepting_flag(self):
        model = ExecutionModel(["a", "b"], [AlternatesRuntime("a", "b")])
        result = Simulator(model, AsapPolicy()).run(1)
        # after a single 'a', the alternation is mid-cycle but the
        # precedence runtime has no final-state notion -> accepting
        assert result.final_accepting

    def test_unconstrained_model_formula_is_true(self):
        model = ExecutionModel(["a"])
        assert model.step_formula() is TRUE
