"""Soundness/completeness cross-checks of the exhaustive explorer.

The explorer is the load-bearing analysis of the reproduction, so it is
checked against independent machinery:

* *soundness* — every edge of the state space corresponds to a step the
  source configuration actually accepts (recomputed on a replayed
  model);
* *completeness* — every simulated trace (any policy, any seed) stays
  inside the explored graph;
* *determinism* — exploring twice yields the same graph.
"""

import networkx as nx
import pytest

from repro.engine import (
    AsapPolicy,
    MinimalPolicy,
    RandomPolicy,
    Simulator,
    explore,
)
from repro.sdf import SdfBuilder, build_execution_model


def small_model():
    builder = SdfBuilder("tri")
    builder.agent("x")
    builder.agent("y")
    builder.agent("z")
    builder.connect("x", "y", push=2, pop=1, capacity=3)
    builder.connect("y", "z", push=1, pop=1, capacity=2)
    model, _app = builder.build()
    return build_execution_model(model).execution_model


def replay_to(space, model, target):
    """Drive a clone of *model* along a shortest path to *target*."""
    path = nx.shortest_path(space.graph, space.initial, target)
    clone = model.clone()
    for previous, current in zip(path, path[1:]):
        step = next(data["step"] for _u, v, data
                    in space.graph.out_edges(previous, data=True)
                    if v == current)
        clone.advance(step)
    return clone


class TestSoundness:
    def test_every_edge_is_acceptable_at_its_source(self):
        model = small_model()
        space = explore(model, max_states=5000)
        assert not space.truncated
        for node in space.graph.nodes:
            replayed = replay_to(space, model, node)
            expected = set()
            for _u, _v, data in space.graph.out_edges(node, data=True):
                expected.add(data["step"])
            actual = set(replayed.acceptable_steps())
            assert expected == actual, f"node {node} disagrees"

    def test_configuration_keys_match_replay(self):
        model = small_model()
        space = explore(model, max_states=5000)
        for node in list(space.graph.nodes)[:10]:
            replayed = replay_to(space, model, node)
            assert replayed.configuration() == \
                space.graph.nodes[node]["key"]


class TestCompleteness:
    @pytest.mark.parametrize("policy", [
        AsapPolicy(), MinimalPolicy(), RandomPolicy(seed=4),
        RandomPolicy(seed=99)])
    def test_simulated_traces_stay_in_the_space(self, policy):
        model = small_model()
        space = explore(model, max_states=5000)
        simulation = Simulator(model.clone(), policy).run(25)
        node = space.initial
        for step in simulation.trace:
            successors = [
                v for _u, v, data in space.graph.out_edges(node, data=True)
                if data["step"] == step]
            assert successors, f"step {sorted(step)} missing from node {node}"
            node = successors[0]


class TestDeterminism:
    def test_exploring_twice_is_identical(self):
        first = explore(small_model(), max_states=5000)
        second = explore(small_model(), max_states=5000)
        assert first.n_states == second.n_states
        assert first.n_transitions == second.n_transitions
        first_edges = sorted(
            (u, v, tuple(sorted(data["step"])))
            for u, v, data in first.graph.edges(data=True))
        second_edges = sorted(
            (u, v, tuple(sorted(data["step"])))
            for u, v, data in second.graph.edges(data=True))
        assert first_edges == second_edges
