"""Partitioned vs monolithic transition relation: mode equivalence.

The partitioned relation (clustered conjuncts, early quantification in
``image``/``preimage``) and the eagerly-conjoined monolithic relation
are two layouts of the *same* transition function — every observable
artifact must be identical under either mode. These tests sweep the
equivalence corpus with the mode forced both ways, compare serialized
state spaces byte-for-byte across modes, and pin that verdicts survive
a forced variable reorder mid-analysis.
"""

import pytest

from repro.engine import cross_check, explore
from repro.engine.ctl import check
from repro.engine.properties import Verdict
from repro.engine.symbolic import symbolic_reachable

from tests.engine.test_symbolic_equivalence import CORPUS

MODES = ("partitioned", "monolithic")


class TestCorpusBothModes:
    @pytest.mark.parametrize("name", sorted(CORPUS))
    @pytest.mark.parametrize("mode", MODES)
    def test_mode_agrees_with_explicit(self, name, mode):
        """Each mode independently matches the explicit engine on the
        full corpus (graph keys, transitions, serialized space)."""
        model = CORPUS[name]()
        report = cross_check(model, max_states=10_000, relation_mode=mode)
        assert report["mismatches"] == [], (name, mode)

    @pytest.mark.parametrize("name", sorted(CORPUS))
    def test_modes_serialize_identically(self, name):
        """The two layouts produce byte-identical serialized spaces —
        not just equal counts, the same graph in the same encoding."""
        model = CORPUS[name]()
        spaces = {}
        for mode in MODES:
            model.clear_caches()  # force a fresh kernel per mode
            spaces[mode] = explore(
                model, max_states=10_000, strategy="symbolic",
                relation_mode=mode).to_json()
        assert spaces["partitioned"] == spaces["monolithic"], name


class TestVerdictsSurviveReorder:
    @pytest.mark.parametrize("mode", MODES)
    def test_forced_midstream_reorder_keeps_verdicts(self, mode):
        """Force a full sift between property checks: the analysis
        caches must come through the renumbering intact (or be
        correctly invalidated) — same verdicts either way."""
        model = CORPUS["chain3-cap2"]()
        props = ("AG !deadlock", "EF deadlock", "AG EF occurs(a0.start)")
        before = [check(model, text, strategy="symbolic",
                        relation_mode=mode).verdict for text in props]
        system = model.kernel.transition_system(model, relation_mode=mode)
        system.bdd.reorder()
        after = [check(model, text, strategy="symbolic",
                       relation_mode=mode).verdict for text in props]
        assert after == before
        assert before[0] is Verdict.HOLDS

    def test_reorder_between_fixpoints_keeps_the_count(self):
        model = CORPUS["forkjoin-cap2"]()
        first = symbolic_reachable(model)
        count = first.count()
        first.system.bdd.reorder()
        model.clear_caches()
        again = symbolic_reachable(model)
        assert again.count() == count
