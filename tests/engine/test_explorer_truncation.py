"""Truncation semantics must be identical across exploration strategies:
``max_states``/``max_depth`` budgets, the ``truncated`` flag, strict
mode, and the frontier nodes recorded in ``to_json``."""

import json

import pytest

from repro.engine import explore
from repro.errors import EngineError, ExplorationLimitError
from repro.sdf import SdfBuilder, weave_sdf


def chain_model(length=4, capacity=2):
    builder = SdfBuilder(f"chain{length}")
    for index in range(length):
        builder.agent(f"a{index}")
    for index in range(length - 1):
        builder.connect(f"a{index}", f"a{index + 1}", capacity=capacity)
    model, _app = builder.build()
    return weave_sdf(model).execution_model


def frontier_ids(space):
    return [node for node, data in space.graph.nodes(data=True)
            if data.get("frontier")]


class TestTruncationParity:
    @pytest.mark.parametrize("max_states", [1, 3, 5, 10, 27, 100])
    def test_max_states_identical(self, max_states):
        model = chain_model()
        explicit = explore(model, max_states=max_states)
        symbolic = explore(model, max_states=max_states,
                           strategy="symbolic")
        assert explicit.to_json() == symbolic.to_json()
        assert explicit.truncated == symbolic.truncated == \
            (max_states < 27)
        assert frontier_ids(explicit) == frontier_ids(symbolic)

    @pytest.mark.parametrize("max_depth", [0, 1, 2, 5, 50])
    def test_max_depth_identical(self, max_depth):
        model = chain_model()
        explicit = explore(model, max_depth=max_depth)
        symbolic = explore(model, max_depth=max_depth,
                           strategy="symbolic")
        assert explicit.to_json() == symbolic.to_json()
        assert frontier_ids(explicit) == frontier_ids(symbolic)

    @pytest.mark.parametrize("options", [
        {"include_empty": True, "max_states": 7},
        {"maximal_only": True, "max_states": 4},
        {"include_empty": True, "max_depth": 2},
    ])
    def test_option_combinations(self, options):
        model = chain_model()
        explicit = explore(model, **options)
        symbolic = explore(model, strategy="symbolic", **options)
        assert explicit.to_json() == symbolic.to_json()

    @pytest.mark.parametrize("strategy", ["explicit", "symbolic"])
    def test_strict_raises(self, strategy):
        with pytest.raises(ExplorationLimitError, match="exceeded"):
            explore(chain_model(), max_states=3, strict=True,
                    strategy=strategy)

    def test_frontier_survives_serialization(self):
        model = chain_model()
        for strategy in ("explicit", "symbolic"):
            space = explore(model, max_states=5, strategy=strategy)
            doc = json.loads(space.to_json())
            assert doc["truncated"]
            assert any(node["frontier"] for node in doc["nodes"])

    def test_auto_strategy_matches(self):
        model = chain_model()
        assert explore(model, max_states=6, strategy="auto").to_json() \
            == explore(model, max_states=6).to_json()

    def test_unknown_strategy_rejected(self):
        with pytest.raises(EngineError, match="unknown exploration"):
            explore(chain_model(2), strategy="quantum")
