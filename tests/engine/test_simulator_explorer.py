"""Tests for simulation, policies, traces and exhaustive exploration."""

import pytest

from repro.ccsl import AlternatesRuntime, PrecedesRuntime, coincides
from repro.engine import (
    AsapPolicy,
    ExecutionModel,
    MinimalPolicy,
    PriorityPolicy,
    RandomPolicy,
    Simulator,
    Trace,
    explore,
    max_cycle_mean_throughput,
)
from repro.engine.analysis import check_mutual_exclusion, variable_bounds
from repro.engine.policies import CallbackPolicy
from repro.errors import DeadlockError
from repro.moccml.semantics import AutomatonRuntime
from tests.moccml.test_ast import place_definition


def place_model(push=1, pop=1, delay=0, capacity=2):
    runtime = AutomatonRuntime(place_definition(), {
        "write": "w", "read": "r", "pushRate": push, "popRate": pop,
        "itsDelay": delay, "itsCapacity": capacity}, label="place")
    return ExecutionModel(["w", "r"], [runtime], name="place-model")


class TestSimulator:
    def test_asap_alternation(self):
        model = ExecutionModel(["a", "b"], [AlternatesRuntime("a", "b")])
        result = Simulator(model, AsapPolicy()).run(6)
        assert result.steps_run == 6
        assert list(result.trace) == [frozenset({"a"}), frozenset({"b"})] * 3

    def test_place_capacity_bounds_writes(self):
        model = place_model(capacity=2)
        result = Simulator(model, PriorityPolicy({"w": 10})).run(10)
        # writes always preferred, but capacity forces alternation w w r w r...
        counts = result.trace.counts()
        assert counts["w"] - counts["r"] <= 2

    def test_deadlock_stop(self):
        # a precedes b and b precedes a with nothing started: after zero
        # steps... make a real deadlock: two alternations in conflict
        model = ExecutionModel(
            ["a", "b"],
            [PrecedesRuntime("a", "b"), PrecedesRuntime("b", "a")])
        result = Simulator(model, AsapPolicy()).run(5)
        assert result.deadlocked
        assert result.stop_reason == "deadlock"
        assert result.steps_run == 0

    def test_deadlock_raise(self):
        model = ExecutionModel(
            ["a", "b"],
            [PrecedesRuntime("a", "b"), PrecedesRuntime("b", "a")])
        with pytest.raises(DeadlockError):
            Simulator(model, AsapPolicy()).run(5, on_deadlock="raise")

    def test_stop_condition(self):
        model = place_model(capacity=5)
        result = Simulator(model, AsapPolicy()).run(
            100, stop_when=lambda trace: trace.count("r") >= 3)
        assert result.stop_reason == "stop-condition"
        assert result.trace.count("r") == 3

    def test_random_policy_reproducible(self):
        first = Simulator(place_model(capacity=4), RandomPolicy(seed=7)).run(20)
        second = Simulator(place_model(capacity=4), RandomPolicy(seed=7)).run(20)
        assert list(first.trace) == list(second.trace)

    def test_minimal_policy_serializes(self):
        model = ExecutionModel(["a", "b"], [coincides("a", "b")])
        model.add_event("c")
        result = Simulator(model, MinimalPolicy()).run(3)
        # minimal non-empty steps: singletons where possible ({c}), else
        # the coincident pair
        assert all(len(step) <= 2 for step in result.trace)

    def test_callback_policy(self):
        model = place_model(capacity=3)
        policy = CallbackPolicy(lambda candidates, index: sorted(
            candidates, key=sorted)[0])
        result = Simulator(model, policy).run(4)
        assert result.steps_run == 4


class TestTrace:
    def test_counts_and_indices(self):
        trace = Trace(["a", "b"])
        trace.append(frozenset({"a"}))
        trace.append(frozenset({"a", "b"}))
        trace.append(frozenset())
        assert trace.count("a") == 2
        assert trace.counts() == {"a": 2, "b": 1}
        assert trace.first_occurrence("b") == 1
        assert trace.first_occurrence("missing") is None
        assert trace.occurrence_indices("a") == [0, 1]
        assert trace.max_parallelism() == 2
        assert trace.mean_parallelism() == 1.0
        assert trace.throughput("a") == 2 / 3

    def test_ascii_rendering(self):
        trace = Trace(["tick", "tock"])
        trace.append(frozenset({"tick"}))
        trace.append(frozenset({"tock"}))
        art = trace.to_ascii()
        lines = art.splitlines()
        assert lines[1].endswith("X.")
        assert lines[2].endswith(".X")

    def test_vcd_export(self):
        trace = Trace(["a"])
        trace.append(frozenset({"a"}))
        vcd = trace.to_vcd()
        assert "$var wire 1" in vcd
        assert "#1" in vcd and "#2" in vcd
        assert vcd.count("1!") == 1  # one rising edge for 'a'


class TestExplorer:
    def test_place_statespace_size(self):
        # place with capacity 3, rates 1: size ranges over 0..3 -> 4 states
        space = explore(place_model(capacity=3))
        assert space.n_states == 4
        assert space.n_transitions == 6  # 3 writes up, 3 reads down
        assert not space.truncated
        assert space.is_deadlock_free()

    def test_alternation_statespace(self):
        model = ExecutionModel(["a", "b"], [AlternatesRuntime("a", "b")])
        space = explore(model)
        assert space.n_states == 2
        assert space.max_parallelism() == 1

    def test_deadlocked_system(self):
        model = ExecutionModel(
            ["a", "b"],
            [PrecedesRuntime("a", "b"), PrecedesRuntime("b", "a")])
        space = explore(model)
        assert space.n_states == 1
        assert space.deadlocks() == [0]
        assert not space.is_deadlock_free()

    def test_truncation_on_unbounded_counter(self):
        model = ExecutionModel(["a", "b"], [PrecedesRuntime("a", "b")])
        space = explore(model, max_states=10)
        assert space.truncated
        assert space.n_states == 10

    def test_strict_raises_on_truncation(self):
        from repro.errors import ExplorationLimitError
        model = ExecutionModel(["a", "b"], [PrecedesRuntime("a", "b")])
        with pytest.raises(ExplorationLimitError):
            explore(model, max_states=5, strict=True)

    def test_max_depth(self):
        model = ExecutionModel(["a", "b"], [PrecedesRuntime("a", "b")])
        space = explore(model, max_depth=3)
        assert space.truncated
        assert all(data["depth"] <= 3
                   for _n, data in space.graph.nodes(data=True))

    def test_does_not_mutate_input(self):
        model = place_model(capacity=2)
        before = model.configuration()
        explore(model)
        assert model.configuration() == before

    def test_dead_events(self):
        model = place_model(capacity=2)
        model.add_event("never")
        # 'never' is free, so it occurs in steps -> it is live
        space = explore(model)
        assert "never" in space.live_events()


class TestAnalysis:
    def test_parallelism_histogram(self):
        space = explore(place_model(capacity=2))
        histogram = space.parallelism_histogram()
        assert set(histogram) == {1}

    def test_throughput_of_place_cycle(self):
        space = explore(place_model(capacity=1))
        # steady state: w r w r ... -> each event once every 2 steps
        assert max_cycle_mean_throughput(space, "r") == pytest.approx(0.5)
        assert max_cycle_mean_throughput(space, "w") == pytest.approx(0.5)

    def test_throughput_bigger_buffer_still_half(self):
        space = explore(place_model(capacity=4))
        assert max_cycle_mean_throughput(space, "r") == pytest.approx(0.5)

    def test_throughput_no_cycle(self):
        model = ExecutionModel(
            ["a", "b"],
            [PrecedesRuntime("a", "b"), PrecedesRuntime("b", "a")])
        space = explore(model)
        assert max_cycle_mean_throughput(space, "a") == 0.0

    def test_mutual_exclusion_check(self):
        model = ExecutionModel(["a", "b"], [AlternatesRuntime("a", "b")])
        space = explore(model)
        assert check_mutual_exclusion(space, ["a", "b"])
        free = explore(ExecutionModel(["a", "b"]))
        assert not check_mutual_exclusion(free, ["a", "b"])

    def test_variable_bounds_from_space(self):
        model = place_model(capacity=3)
        space = explore(model)
        bounds = variable_bounds(model, space)
        assert bounds["place.size"] == (0, 3)

    def test_variable_bounds_current_only(self):
        model = place_model(capacity=3, delay=2)
        bounds = variable_bounds(model)
        assert bounds["place.size"] == (2, 2)
