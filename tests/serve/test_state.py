"""Model cache: fingerprint keying, single-flight admission, two-bound
LRU eviction, and real kernel release on eviction."""

import gc
import threading
import weakref

import pytest

from repro.serve.metrics import Metrics
from repro.serve.state import ModelCache, ServeError, model_key, \
    resident_nodes

# ---------------------------------------------------------------------------
# stub handles: the cache's contract with a handle is tiny (an
# execution_model with clear_caches()/_kernel, an optional exec_lock)
# ---------------------------------------------------------------------------


class FakeKernel:
    def __init__(self, nodes):
        self._nodes = nodes

    def cache_sizes(self):
        return {"bdd_nodes": self._nodes}

    def engine_telemetry(self):
        return None


class FakeModel:
    def __init__(self, nodes=0):
        self._kernel = FakeKernel(nodes) if nodes else None
        self.cleared = 0

    def clear_caches(self):
        self._kernel = None
        self.cleared += 1


class FakeHandle:
    def __init__(self, name, nodes=0):
        self.name = name
        self.execution_model = FakeModel(nodes)
        self.exec_lock = threading.RLock()


def doc(n):
    return {"frontend": "fake", "id": n}


def fake_loader(source_doc):
    return FakeHandle(f"model-{source_doc['id']}")


class TestModelKey:
    def test_stable(self):
        assert model_key(doc(1)) == model_key(doc(1))
        assert model_key(doc(1)) != model_key(doc(2))

    def test_key_ignores_key_order(self):
        a = {"frontend": "sigpml", "text": "x"}
        b = {"text": "x", "frontend": "sigpml"}
        assert model_key(a) == model_key(b)

    def test_non_json_raises(self):
        with pytest.raises(ServeError):
            model_key({"bad": object()})


class TestResidentNodes:
    def test_no_kernel_is_zero_without_materializing(self):
        handle = FakeHandle("h")
        assert resident_nodes(handle) == 0
        assert handle.execution_model._kernel is None

    def test_counts_kernel_nodes(self):
        handle = FakeHandle("h", nodes=42)
        assert resident_nodes(handle) == 42


class TestAcquire:
    def test_miss_then_hit(self):
        metrics = Metrics()
        cache = ModelCache(max_models=4, metrics=metrics,
                           loader=fake_loader)
        first = cache.acquire(doc(1))
        second = cache.acquire(doc(1))
        assert first is second
        assert second.hits == 1
        counters = metrics.snapshot()["counters"]
        assert counters["model_cache_misses"] == 1
        assert counters["model_cache_hits"] == 1
        assert counters["model_compiles"] == 1

    def test_compile_latency_observed(self):
        metrics = Metrics()
        cache = ModelCache(max_models=4, metrics=metrics,
                           loader=fake_loader)
        cache.acquire(doc(1))
        assert metrics.snapshot()["latency"]["compile_s"]["count"] == 1

    def test_failed_build_leaves_no_residue(self):
        calls = []

        def flaky(source_doc):
            calls.append(source_doc)
            if len(calls) == 1:
                raise RuntimeError("front-end exploded")
            return FakeHandle("ok")

        cache = ModelCache(max_models=4, loader=flaky)
        with pytest.raises(RuntimeError):
            cache.acquire(doc(1))
        assert len(cache) == 0
        # the next request retries cleanly
        entry = cache.acquire(doc(1))
        assert entry.handle.name == "ok"
        assert len(calls) == 2


class TestSingleFlight:
    def test_concurrent_acquires_compile_once(self):
        builds = []
        gate = threading.Event()

        def slow_loader(source_doc):
            builds.append(source_doc)
            gate.wait(timeout=5)
            return FakeHandle("shared")

        cache = ModelCache(max_models=4, loader=slow_loader)
        entries = []
        errors = []

        def worker():
            try:
                entries.append(cache.acquire(doc(1)))
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        gate.set()
        for thread in threads:
            thread.join(timeout=10)
        assert not errors
        assert len(builds) == 1  # the herd compiled once
        assert len({id(entry) for entry in entries}) == 1

    def test_failed_build_raises_in_every_waiter(self):
        gate = threading.Event()

        def doomed_loader(source_doc):
            gate.wait(timeout=5)
            raise RuntimeError("doomed")

        cache = ModelCache(max_models=4, loader=doomed_loader)
        outcomes = []

        def worker():
            try:
                cache.acquire(doc(1))
                outcomes.append("ok")
            except RuntimeError:
                outcomes.append("raised")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        gate.set()
        for thread in threads:
            thread.join(timeout=10)
        assert outcomes == ["raised"] * 4
        assert len(cache) == 0

    def test_failed_admission_wakes_every_waiter(self):
        """A crash *after* the loader (in the admission verdict) must
        still wake single-flight waiters — they'd otherwise block on an
        event nobody will ever set."""
        gate = threading.Event()

        def slow_loader(source_doc):
            gate.wait(timeout=5)
            return FakeHandle("shared")

        cache = ModelCache(max_models=4, loader=slow_loader)
        cache._admission_verdict = _raise_doomed
        outcomes = []

        def worker():
            try:
                cache.acquire(doc(1))
                outcomes.append("ok")
            except RuntimeError:
                outcomes.append("raised")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        gate.set()
        for thread in threads:
            thread.join(timeout=10)
        assert outcomes == ["raised"] * 4
        assert len(cache) == 0


def _raise_doomed(handle):
    raise RuntimeError("doomed verdict")


class TestEviction:
    def test_entry_count_lru(self):
        cache = ModelCache(max_models=2, loader=fake_loader)
        first = cache.acquire(doc(1))
        cache.acquire(doc(2))
        cache.acquire(doc(1))  # refresh 1: now 2 is the LRU
        cache.acquire(doc(3))  # evicts 2
        assert len(cache) == 2
        assert first.handle.execution_model.cleared == 0
        # re-acquiring 2 is a miss (it was evicted), 1 is a hit
        metrics = Metrics()
        cache.metrics = metrics
        cache.acquire(doc(1))
        counters = metrics.snapshot()["counters"]
        assert counters.get("model_cache_hits", 0) == 1

    def test_eviction_clears_caches(self):
        cache = ModelCache(max_models=1, loader=fake_loader)
        first = cache.acquire(doc(1))
        cache.acquire(doc(2))
        assert first.handle.execution_model.cleared == 1
        assert cache.evictions == 1

    def test_node_budget_evicts(self):
        def heavy_loader(source_doc):
            return FakeHandle(f"m{source_doc['id']}", nodes=1000)

        cache = ModelCache(max_models=10, max_nodes=2500,
                           loader=heavy_loader)
        cache.acquire(doc(1))
        cache.acquire(doc(2))
        assert len(cache) == 2  # 2000 nodes: under budget
        cache.acquire(doc(3))  # 3000 > 2500: oldest goes
        assert len(cache) == 2
        assert cache.node_total() == 2000

    def test_never_evicts_the_protected_entry(self):
        def heavy_loader(source_doc):
            return FakeHandle(f"m{source_doc['id']}", nodes=1000)

        # budget below a single model: the just-admitted entry must
        # survive (protected), everything else goes
        cache = ModelCache(max_models=10, max_nodes=500,
                           loader=heavy_loader)
        cache.acquire(doc(1))
        entry = cache.acquire(doc(2))
        assert len(cache) == 1
        assert cache.acquire(doc(2)) is entry

    def test_busy_entries_are_skipped(self):
        # the runner is a *different* thread (as in the server, where
        # eviction happens on one request thread while another holds
        # the handle's exec_lock for the duration of its run group)
        cache = ModelCache(max_models=1, loader=fake_loader)
        busy = cache.acquire(doc(1))
        held = threading.Event()
        release = threading.Event()

        def runner():
            with busy.handle.exec_lock:
                held.set()
                release.wait(timeout=10)

        thread = threading.Thread(target=runner)
        thread.start()
        held.wait(timeout=10)
        try:
            cache.acquire(doc(2))
            # the busy entry was spared: transient overshoot
            assert len(cache) == 2
            assert busy.handle.execution_model.cleared == 0
        finally:
            release.set()
            thread.join(timeout=10)
        # with the lock released the next admission trims back down
        cache.acquire(doc(3))
        assert len(cache) == 1

    def test_evict_all(self):
        cache = ModelCache(max_models=4, loader=fake_loader)
        entries = [cache.acquire(doc(n)) for n in range(3)]
        assert cache.evict_all() == 3
        assert len(cache) == 0
        assert all(e.handle.execution_model.cleared == 1
                   for e in entries)


class TestTelemetry:
    def test_shape(self):
        cache = ModelCache(max_models=4, loader=fake_loader)
        cache.acquire(doc(1))
        report = cache.telemetry()
        assert report["models"] == 1
        assert report["max_models"] == 4
        assert report["evictions"] == 0
        entry = report["entries"][0]
        assert set(entry) == {"key", "name", "hits", "compile_s",
                              "age_s", "idle_s", "bdd_nodes", "encodable"}


class TestKernelRelease:
    """Satellite: eviction must make the real BDD managers garbage."""

    MODEL = """
    application release_probe {
      agent a
      agent b
      place a -> b push 1 pop 1 capacity 2
    }
    """

    def test_clear_caches_releases_the_kernel(self):
        from repro.workbench import load
        source_doc = {"frontend": "sigpml", "text": self.MODEL}

        def loader(doc_):
            from repro.workbench.frontends import source_from_doc
            return load(source_from_doc(doc_))

        cache = ModelCache(max_models=4, loader=loader)
        entry = cache.acquire(source_doc)
        model = entry.handle.execution_model
        # materialize the kernel the way a symbolic run would
        from repro.engine import explore
        explore(model, max_states=500, strategy="symbolic")
        kernel = model._kernel
        assert kernel is not None
        assert resident_nodes(entry.handle) > 0
        probe = weakref.ref(kernel)
        del kernel
        assert cache.evict_all() == 1
        del entry, model
        gc.collect()
        assert probe() is None, \
            "evicted kernel (and its BDD managers) must be collectable"
