"""The client: local fallback, document splitting, endpoint handling."""

import pytest

from repro.serve import ServeError, ping, run_local, serve, \
    split_document, submit_or_local

CHAIN = """
application client_chain {
  agent a
  agent b
  place a -> b push 1 pop 1 capacity 2
}
"""


def document():
    return {"models": {"m": {"frontend": "sigpml", "text": CHAIN}},
            "runs": [{"kind": "simulate", "model": "m", "steps": 6}]}


#: a loopback port nothing listens on (port 1 is reserved)
DEAD = "http://127.0.0.1:1"


class TestSplitDocument:
    def test_mapping_form(self):
        models, runs = split_document({"models": {"m": {}},
                                       "runs": [{"kind": "simulate"}]})
        assert models == {"m": {}}
        assert len(runs) == 1

    def test_bare_list_form(self):
        models, runs = split_document([{"kind": "simulate"}])
        assert models == {}
        assert len(runs) == 1

    def test_scalar_rejected(self):
        with pytest.raises(ServeError):
            split_document("nope")

    def test_malformed_sections_rejected(self):
        with pytest.raises(ServeError):
            split_document({"models": [], "runs": {}})


class TestFallback:
    def test_unreachable_server_falls_back_to_local(self):
        results, origin = submit_or_local(document(), server=DEAD)
        assert origin == "local"
        assert results[0].ok

    def test_no_server_runs_local(self):
        results, origin = submit_or_local(document(), server=None)
        assert origin == "local"
        assert results[0].ok

    def test_reachable_server_is_used(self):
        with serve(port=0).start() as server:
            results, origin = submit_or_local(document(),
                                              server=server.url)
        assert origin == "server"
        assert results[0].ok

    def test_draining_server_falls_back(self):
        server = serve(port=0).start()
        try:
            server.service.begin_drain()
            results, origin = submit_or_local(document(),
                                              server=server.url)
            assert origin == "local"
            assert results[0].ok
        finally:
            server.drain()

    def test_rejected_document_does_not_fall_back(self):
        bad = {"models": {}, "runs": [{"kind": "simulate",
                                       "model": "ghost"}]}
        with serve(port=0).start() as server:
            with pytest.raises(ServeError):
                submit_or_local(bad, server=server.url)

    def test_fallback_matches_server_bytes(self):
        with serve(port=0).start() as server:
            from_server, _ = submit_or_local(document(),
                                             server=server.url)
        from_local, _ = submit_or_local(document(), server=DEAD)
        assert [r.to_json() for r in from_server] == \
            [r.to_json() for r in from_local]


class TestRunLocal:
    def test_streaming_callback(self):
        seen = []
        run_local(document(),
                  on_result=lambda index, result: seen.append(index))
        assert seen == [0]

    def test_ping_unreachable_is_none(self):
        assert ping(DEAD) is None
