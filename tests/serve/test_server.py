"""The HTTP server: round-trip byte-identity, error paths, store
write-through, concurrency, and drain semantics."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serve import (ServeError, fetch_metrics, ping, run_local,
                         serve, submit)

CHAIN = """
application serve_chain {
  agent source
  agent worker
  agent sink
  place source -> worker push 1 pop 1 capacity 2
  place worker -> sink push 1 pop 1 capacity 2
}
"""

FORK = """
application serve_fork {
  agent split
  agent left
  agent right
  place split -> left push 1 pop 1 capacity 1
  place split -> right push 1 pop 1 capacity 1
}
"""


def model_doc(text):
    return {"frontend": "sigpml", "text": text}


def document():
    return {
        "models": {"chain": model_doc(CHAIN), "fork": model_doc(FORK)},
        "runs": [
            {"kind": "simulate", "model": "chain", "steps": 10},
            {"kind": "explore", "model": "chain", "max_states": 500},
            {"kind": "check", "model": "fork",
             "property": "AG !deadlock", "max_states": 500},
            {"kind": "simulate", "model": "fork", "steps": 8},
        ],
    }


@pytest.fixture()
def server():
    instance = serve(port=0, workers=4).start()
    yield instance
    instance.drain()


class TestRoundTrip:
    def test_served_results_are_byte_identical_to_local(self, server):
        served = submit(document(), server.url)
        local = run_local(document())
        assert len(served) == 4
        for from_server, offline in zip(served, local):
            assert from_server.to_json() == offline.to_json()

    def test_streaming_callback_order(self, server):
        seen = []
        submit(document(), server.url,
               on_result=lambda index, result: seen.append(index))
        assert sorted(seen) == [0, 1, 2, 3]

    def test_result_model_names_are_request_local(self, server):
        served = submit(document(), server.url)
        assert [result.model for result in served] == \
            ["chain", "chain", "fork", "fork"]

    def test_same_model_under_two_names(self, server):
        doc = {
            "models": {"a": model_doc(CHAIN), "b": model_doc(CHAIN)},
            "runs": [{"kind": "simulate", "model": "a", "steps": 5},
                     {"kind": "simulate", "model": "b", "steps": 5}],
        }
        served = submit(doc, server.url)
        assert served[0].model == "a"
        assert served[1].model == "b"
        # one fingerprint: the cache holds a single entry
        assert len(server.service.cache) == 1


class TestErrorPaths:
    def test_unknown_model_name_is_rejected(self, server):
        doc = {"models": {},
               "runs": [{"kind": "simulate", "model": "ghost"}]}
        with pytest.raises(ServeError, match="ghost"):
            submit(doc, server.url)

    def test_invalid_spec_is_rejected(self, server):
        doc = {"models": {"chain": model_doc(CHAIN)},
               "runs": [{"kind": "nonsense", "model": "chain"}]}
        with pytest.raises(ServeError, match="not a valid spec"):
            submit(doc, server.url)

    def test_unloadable_model_is_a_400_not_a_crash(self, server):
        doc = {"models": {"m": {"frontend": "sigpml",
                                "text": "not a model"}},
               "runs": [{"kind": "simulate", "model": "m"}]}
        with pytest.raises(ServeError, match="400"):
            submit(doc, server.url)
        # the handler answered cleanly and the server still serves
        assert ping(server.url)["status"] == "ok"

    def test_empty_runs_rejected(self, server):
        with pytest.raises(ServeError):
            submit({"models": {}, "runs": []}, server.url)

    def test_unknown_route_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(server.url + "/nope")
        assert excinfo.value.code == 404

    def test_garbage_body_400(self, server):
        request = urllib.request.Request(
            server.url + "/run", data=b"{not json",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    def test_per_spec_engine_errors_stream_as_results(self, server):
        doc = {"models": {"chain": model_doc(CHAIN)},
               "runs": [{"kind": "check", "model": "chain",
                         "property": "AG !!broken!!syntax"},
                        {"kind": "simulate", "model": "chain",
                         "steps": 5}]}
        served = submit(doc, server.url)
        assert not served[0].ok  # the bad property fails its own run
        assert served[1].ok      # without taking the batch down


class TestIntrospection:
    def test_healthz(self, server):
        health = ping(server.url)
        assert health["status"] == "ok"
        assert health["workers"] == 4
        assert health["inflight"] == 0

    def test_metrics_counts_requests_and_runs(self, server):
        submit(document(), server.url)
        metrics = fetch_metrics(server.url)
        assert metrics["counters"]["requests"] == 1
        assert metrics["counters"]["runs"] == 4
        assert metrics["counters"]["model_compiles"] == 2
        assert metrics["latency"]["request_s"]["count"] == 1
        assert metrics["model_cache"]["models"] == 2

    def test_metrics_gauges_present(self, server):
        submit(document(), server.url)
        gauges = fetch_metrics(server.url)["gauges"]
        assert gauges["models_cached"] == 2
        assert isinstance(gauges["resident_bdd_nodes"], int)


class TestStoreWriteThrough:
    def test_second_request_is_all_hits_and_byte_identical(self, tmp_path):
        with serve(port=0, store=tmp_path / "store").start() as server:
            cold = submit(document(), server.url)
            assert not any(result.cached for result in cold)
            warm = submit(document(), server.url)
            assert all(result.cached for result in warm)
            for a, b in zip(cold, warm):
                assert a.to_json() == b.to_json()
            metrics = fetch_metrics(server.url)
            assert metrics["counters"]["store_hits"] == 4
            assert metrics["counters"]["store_misses"] == 4
            assert metrics["cache_hit_rate"] == 0.5


class TestConcurrency:
    def test_concurrent_same_model_requests_compile_once(self, server):
        doc = {"models": {"chain": model_doc(CHAIN)},
               "runs": [{"kind": "explore", "model": "chain",
                         "max_states": 500}]}
        payloads: list[list] = []
        errors: list[BaseException] = []

        def client():
            try:
                payloads.append(
                    [r.to_json() for r in submit(doc, server.url)])
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=client) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert len(payloads) == 8
        reference = payloads[0]
        assert all(payload == reference for payload in payloads)
        metrics = fetch_metrics(server.url)
        # single-flight: the herd compiled the model exactly once
        assert metrics["counters"]["model_compiles"] == 1
        assert metrics["counters"]["requests"] == 8

    def test_byte_identity_across_worker_counts(self, tmp_path):
        payloads = {}
        for workers in (1, 4):
            with serve(port=0, workers=workers).start() as server:
                results = submit(document(), server.url)
                payloads[workers] = [r.to_json() for r in results]
        assert payloads[1] == payloads[4]


class TestDrain:
    def test_drain_refuses_new_work_and_evicts(self):
        server = serve(port=0).start()
        submit(document(), server.url)
        assert len(server.service.cache) == 2
        report = server.drain()
        assert report["evicted_on_close"] == 2
        assert ping(server.url) is None  # socket is closed

    def test_draining_service_rejects_requests(self):
        server = serve(port=0).start()
        try:
            server.service.begin_drain()
            assert ping(server.url)["status"] == "draining"
            with pytest.raises(ServeError, match="draining"):
                submit(document(), server.url)
        finally:
            server.drain()

    def test_drain_waits_for_inflight_requests(self):
        release = threading.Event()
        started = threading.Event()

        def slow_loader(source_doc):
            started.set()
            release.wait(timeout=30)
            from repro.workbench.frontends import load, source_from_doc
            return load(source_from_doc(source_doc))

        server = serve(port=0, loader=slow_loader).start()
        outcome = {}

        def client():
            doc = {"models": {"chain": model_doc(CHAIN)},
                   "runs": [{"kind": "simulate", "model": "chain",
                             "steps": 5}]}
            outcome["results"] = submit(doc, server.url)

        thread = threading.Thread(target=client)
        thread.start()
        started.wait(timeout=30)

        drained = {}

        def drainer():
            drained["report"] = server.drain()

        drain_thread = threading.Thread(target=drainer)
        drain_thread.start()
        # the drain must be blocked on the in-flight request
        drain_thread.join(timeout=0.5)
        assert drain_thread.is_alive()
        release.set()
        thread.join(timeout=30)
        drain_thread.join(timeout=30)
        assert not drain_thread.is_alive()
        assert outcome["results"][0].ok
        assert drained["report"]["counters"]["requests"] == 1


class TestJsonEnvelope:
    def test_raw_ndjson_stream_shape(self, server):
        payload = json.dumps(document()).encode()
        request = urllib.request.Request(
            server.url + "/run", data=payload,
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request) as response:
            lines = [json.loads(line) for line in response
                     if line.strip()]
        assert len(lines) == 5  # four results + the summary
        for envelope in lines[:-1]:
            assert envelope["serve"] == 1
            assert set(envelope) == {"serve", "index", "cached",
                                     "result"}
        summary = lines[-1]
        assert summary["done"] is True
        assert summary["runs"] == 4
        assert summary["errors"] == 0
