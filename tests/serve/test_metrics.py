"""Metrics: histograms, counters, gauges, the snapshot document."""

import threading

from repro.serve.metrics import DEFAULT_BUCKETS, LatencyHistogram, Metrics

#: the exact top-level key order GET /metrics has always promised —
#: Metrics moving onto the shared repro.obs registry must not move,
#: rename or drop any of these.
SNAPSHOT_KEYS = ("uptime_s", "counters", "cache_hit_rate", "latency",
                 "gauges")

#: the seeded counter names a fresh server reports as zeros
SEEDED_COUNTERS = frozenset({
    "requests", "requests_failed", "runs", "run_errors",
    "store_hits", "store_misses", "model_cache_hits",
    "model_cache_misses", "model_compiles", "model_evictions",
})

#: the seeded latency histograms (present even when empty)
SEEDED_HISTOGRAMS = frozenset({"request_s", "run_s", "compile_s"})


class TestLatencyHistogram:
    def test_empty_percentile_is_none(self):
        assert LatencyHistogram().percentile(0.5) is None

    def test_snapshot_empty(self):
        snap = LatencyHistogram().snapshot()
        assert snap == {"count": 0, "sum_s": 0.0, "max_s": 0.0}

    def test_record_accumulates(self):
        histogram = LatencyHistogram()
        for value in (0.001, 0.002, 0.003):
            histogram.record(value)
        assert histogram.total == 3
        assert abs(histogram.sum - 0.006) < 1e-9
        assert histogram.max == 0.003

    def test_percentiles_are_ordered(self):
        histogram = LatencyHistogram()
        for i in range(1, 101):
            histogram.record(i / 1000.0)  # 1ms .. 100ms
        p50 = histogram.percentile(0.5)
        p90 = histogram.percentile(0.9)
        p99 = histogram.percentile(0.99)
        assert p50 <= p90 <= p99
        # accurate to a bucket width: the true p50 is ~50ms, inside
        # the (25ms, 50ms] bucket
        assert 0.025 <= p50 <= 0.1

    def test_overflow_bucket_reports_max(self):
        histogram = LatencyHistogram()
        histogram.record(500.0)  # beyond the last bound
        assert histogram.counts[-1] == 1
        assert histogram.percentile(0.5) == 500.0

    def test_negative_values_clamp_to_zero(self):
        histogram = LatencyHistogram()
        histogram.record(-1.0)
        assert histogram.sum == 0.0
        assert histogram.total == 1

    def test_bounds_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestMetrics:
    def test_count_and_snapshot(self):
        metrics = Metrics()
        metrics.count("requests")
        metrics.count("requests", 2)
        snap = metrics.snapshot()
        assert snap["counters"]["requests"] == 3

    def test_unknown_counter_is_created(self):
        metrics = Metrics()
        metrics.count("something_new")
        assert metrics.snapshot()["counters"]["something_new"] == 1

    def test_observe_feeds_histogram(self):
        metrics = Metrics()
        metrics.observe("request_s", 0.01)
        snap = metrics.snapshot()
        assert snap["latency"]["request_s"]["count"] == 1

    def test_observe_unknown_histogram_is_created(self):
        metrics = Metrics()
        metrics.observe("custom_s", 0.5)
        assert metrics.snapshot()["latency"]["custom_s"]["count"] == 1

    def test_cache_hit_rate(self):
        metrics = Metrics()
        assert metrics.snapshot()["cache_hit_rate"] is None
        metrics.count("store_hits", 3)
        metrics.count("store_misses", 1)
        assert metrics.snapshot()["cache_hit_rate"] == 0.75

    def test_gauges_polled_at_snapshot(self):
        metrics = Metrics()
        value = [7]
        metrics.register_gauge("nodes", lambda: value[0])
        assert metrics.snapshot()["gauges"]["nodes"] == 7
        value[0] = 13
        assert metrics.snapshot()["gauges"]["nodes"] == 13

    def test_failing_gauge_never_breaks_snapshot(self):
        metrics = Metrics()

        def broken():
            raise RuntimeError("kernel went away")

        metrics.register_gauge("bad", broken)
        snap = metrics.snapshot()
        assert snap["gauges"]["bad"].startswith("error:")

    def test_thread_safety_of_counters(self):
        metrics = Metrics()

        def work():
            for _ in range(500):
                metrics.count("runs")
                metrics.observe("run_s", 0.001)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snap = metrics.snapshot()
        assert snap["counters"]["runs"] == 4000
        assert snap["latency"]["run_s"]["count"] == 4000


class TestGoldenPayloadShape:
    """The /metrics wire contract, pinned: the move onto the shared
    :class:`repro.obs.MetricsRegistry` must be invisible on the wire."""

    def test_fresh_snapshot_key_order_and_seeds(self):
        snap = Metrics().snapshot()
        assert tuple(snap) == SNAPSHOT_KEYS
        assert set(snap["counters"]) == SEEDED_COUNTERS
        assert all(value == 0 for value in snap["counters"].values())
        assert set(snap["latency"]) == SEEDED_HISTOGRAMS
        for histogram in snap["latency"].values():
            assert histogram == {"count": 0, "sum_s": 0.0, "max_s": 0.0}
        assert snap["cache_hit_rate"] is None
        assert snap["gauges"] == {}
        assert snap["uptime_s"] >= 0.0

    def test_metrics_is_the_shared_registry_but_not_the_global_one(self):
        from repro import obs

        metrics = Metrics()
        assert isinstance(metrics, obs.MetricsRegistry)
        assert metrics is not obs.GLOBAL
        # per-server counters never leak into the process-global
        # registry the engine writes to
        before = obs.GLOBAL.counter("requests")
        metrics.count("requests")
        assert obs.GLOBAL.counter("requests") == before

    def test_reset_preserves_the_seeded_shape(self):
        metrics = Metrics()
        metrics.count("runs", 5)
        metrics.observe("custom_s", 0.1)
        metrics.reset()
        snap = metrics.snapshot()
        assert tuple(snap) == SNAPSHOT_KEYS
        assert set(snap["counters"]) >= SEEDED_COUNTERS
        assert snap["counters"]["runs"] == 0
        # reset drops histogram history; the wire shape only promises
        # that recorded phases reappear as they are observed
        metrics.observe("run_s", 0.2)
        snap_after = metrics.snapshot()
        assert snap_after["latency"]["run_s"]["count"] == 1


class TestDrainReportShape:
    """The drain log (``AnalysisService.close``) is the /metrics
    document plus the service-level sections and the eviction count."""

    def _service(self):
        from repro.serve.server import AnalysisService

        return AnalysisService(max_models=2, workers=1)

    def _document(self):
        text = """
        application drainapp {
          agent src
          agent dst
          place src -> dst push 1 pop 1 capacity 2
        }
        """
        return {"models": {"m": {"frontend": "sigpml", "text": text}},
                "runs": [{"kind": "simulate", "model": "m",
                          "steps": 4}]}

    def test_drain_report_extends_the_metrics_document(self):
        service = self._service()
        summary = service.handle_request(self._document(),
                                         lambda line: None)
        assert summary["errors"] == 0
        service.begin_drain()
        assert service.drained()
        report = service.close()
        assert tuple(report)[:5] == SNAPSHOT_KEYS
        assert set(report) == set(SNAPSHOT_KEYS) | {
            "model_cache", "encodability", "evicted_on_close"}
        assert report["counters"]["requests"] == 1
        assert report["counters"]["runs"] == 1
        assert report["counters"]["model_compiles"] == 1
        assert report["latency"]["request_s"]["count"] == 1
        assert report["evicted_on_close"] == 1
        assert report["gauges"]["models_cached"] == 1  # polled pre-evict
