"""Metrics: histograms, counters, gauges, the snapshot document."""

import threading

from repro.serve.metrics import DEFAULT_BUCKETS, LatencyHistogram, Metrics


class TestLatencyHistogram:
    def test_empty_percentile_is_none(self):
        assert LatencyHistogram().percentile(0.5) is None

    def test_snapshot_empty(self):
        snap = LatencyHistogram().snapshot()
        assert snap == {"count": 0, "sum_s": 0.0, "max_s": 0.0}

    def test_record_accumulates(self):
        histogram = LatencyHistogram()
        for value in (0.001, 0.002, 0.003):
            histogram.record(value)
        assert histogram.total == 3
        assert abs(histogram.sum - 0.006) < 1e-9
        assert histogram.max == 0.003

    def test_percentiles_are_ordered(self):
        histogram = LatencyHistogram()
        for i in range(1, 101):
            histogram.record(i / 1000.0)  # 1ms .. 100ms
        p50 = histogram.percentile(0.5)
        p90 = histogram.percentile(0.9)
        p99 = histogram.percentile(0.99)
        assert p50 <= p90 <= p99
        # accurate to a bucket width: the true p50 is ~50ms, inside
        # the (25ms, 50ms] bucket
        assert 0.025 <= p50 <= 0.1

    def test_overflow_bucket_reports_max(self):
        histogram = LatencyHistogram()
        histogram.record(500.0)  # beyond the last bound
        assert histogram.counts[-1] == 1
        assert histogram.percentile(0.5) == 500.0

    def test_negative_values_clamp_to_zero(self):
        histogram = LatencyHistogram()
        histogram.record(-1.0)
        assert histogram.sum == 0.0
        assert histogram.total == 1

    def test_bounds_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestMetrics:
    def test_count_and_snapshot(self):
        metrics = Metrics()
        metrics.count("requests")
        metrics.count("requests", 2)
        snap = metrics.snapshot()
        assert snap["counters"]["requests"] == 3

    def test_unknown_counter_is_created(self):
        metrics = Metrics()
        metrics.count("something_new")
        assert metrics.snapshot()["counters"]["something_new"] == 1

    def test_observe_feeds_histogram(self):
        metrics = Metrics()
        metrics.observe("request_s", 0.01)
        snap = metrics.snapshot()
        assert snap["latency"]["request_s"]["count"] == 1

    def test_observe_unknown_histogram_is_created(self):
        metrics = Metrics()
        metrics.observe("custom_s", 0.5)
        assert metrics.snapshot()["latency"]["custom_s"]["count"] == 1

    def test_cache_hit_rate(self):
        metrics = Metrics()
        assert metrics.snapshot()["cache_hit_rate"] is None
        metrics.count("store_hits", 3)
        metrics.count("store_misses", 1)
        assert metrics.snapshot()["cache_hit_rate"] == 0.75

    def test_gauges_polled_at_snapshot(self):
        metrics = Metrics()
        value = [7]
        metrics.register_gauge("nodes", lambda: value[0])
        assert metrics.snapshot()["gauges"]["nodes"] == 7
        value[0] = 13
        assert metrics.snapshot()["gauges"]["nodes"] == 13

    def test_failing_gauge_never_breaks_snapshot(self):
        metrics = Metrics()

        def broken():
            raise RuntimeError("kernel went away")

        metrics.register_gauge("bad", broken)
        snap = metrics.snapshot()
        assert snap["gauges"]["bad"].startswith("error:")

    def test_thread_safety_of_counters(self):
        metrics = Metrics()

        def work():
            for _ in range(500):
                metrics.count("runs")
                metrics.observe("run_s", 0.001)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snap = metrics.snapshot()
        assert snap["counters"]["runs"] == 4000
        assert snap["latency"]["run_s"]["count"] == 4000
