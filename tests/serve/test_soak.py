"""Soak: a long-lived service must not leak kernels or deadlock.

Satellite requirement: 1000 requests over 20 distinct models under
``max_models=4`` keep resident BDD-node counts plateaued (bounded by
the LRU, not growing with request count) and never deadlock on
concurrent same-model requests. The requests drive
:meth:`AnalysisService.handle_request` directly — the HTTP layer adds
nothing to the leak/deadlock question and a socket per request would
dominate the runtime.
"""

import itertools
from concurrent.futures import ThreadPoolExecutor

from repro.serve import AnalysisService

MODEL_COUNT = 20
REQUESTS = 1000
MAX_MODELS = 4


def model_text(index):
    # 20 structurally distinct two-agent chains: different names and
    # capacities give different fingerprints and different kernels
    return f"""
    application soak_{index} {{
      agent producer_{index}
      agent consumer_{index}
      place producer_{index} -> consumer_{index} push 1 pop 1 \
capacity {1 + index % 4}
    }}
    """


MODELS = [{"frontend": "sigpml", "text": model_text(i)}
          for i in range(MODEL_COUNT)]


def request_document(model_index, steps):
    return {
        "models": {f"m{model_index}": MODELS[model_index]},
        "runs": [{"kind": "simulate", "model": f"m{model_index}",
                  "steps": steps},
                 {"kind": "check", "model": f"m{model_index}",
                  "property": "AG !deadlock", "max_states": 200,
                  "strategy": "symbolic"}],
    }


def model_sequence():
    """Mostly-hot access pattern: ~90% of requests hit 4 hot models
    (matching the cache size), the rest sweep all 20 — every cold hit
    forces an eviction + recompile, so the LRU churns continuously
    without making the test all about compile time."""
    cold = itertools.cycle(range(MODEL_COUNT))
    for i in range(REQUESTS):
        yield next(cold) if i % 10 == 0 else i % MAX_MODELS


def test_soak_node_counts_plateau_and_no_deadlock():
    service = AnalysisService(max_models=MAX_MODELS, workers=4)
    node_samples = []
    summaries = []

    def one_request(model_index):
        collected = []
        summary = service.handle_request(
            request_document(model_index, steps=3),
            collected.append)
        assert summary["errors"] == 0, collected
        return summary

    with ThreadPoolExecutor(max_workers=4) as pool:
        pending = []
        for i, model_index in enumerate(model_sequence()):
            pending.append(pool.submit(one_request, model_index))
            if len(pending) >= 50:
                for future in pending:
                    summaries.append(future.result(timeout=120))
                pending.clear()
                node_samples.append(service.cache.node_total())
        for future in pending:
            summaries.append(future.result(timeout=120))
        node_samples.append(service.cache.node_total())

    assert len(summaries) == REQUESTS
    assert all(summary["done"] for summary in summaries)

    # the LRU held its entry bound throughout (spot-check at the end;
    # transient overshoot beyond the bound is only allowed while a
    # runner pins an entry, and none are running now)
    assert len(service.cache) <= MAX_MODELS

    # plateau: resident nodes in the steady-state second half must not
    # exceed the early high-water mark — growth with request count
    # would be a kernel leak
    quarter = max(1, len(node_samples) // 4)
    early_peak = max(node_samples[:quarter * 2])
    late_peak = max(node_samples[quarter * 2:])
    assert late_peak <= early_peak * 1.5 + 1000, \
        (f"resident nodes grew with request count: early peak "
         f"{early_peak}, late peak {late_peak} (samples: "
         f"{node_samples})")

    # the churn really happened: cold models forced evictions
    assert service.cache.evictions >= MODEL_COUNT

    report = service.metrics_doc()
    assert report["counters"]["requests"] == REQUESTS
    assert report["counters"]["run_errors"] == 0
    assert report["counters"]["model_cache_hits"] > \
        report["counters"]["model_cache_misses"]
