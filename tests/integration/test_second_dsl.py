"""Integration test: MoCCML woven into a *second*, non-SDF DSL.

The paper's pitch is DSL independence: "we are injecting the MoCC into
the designer appropriate language" rather than forcing a proprietary
formalism. This test builds, from scratch and without touching
`repro.sdf`, a small traffic-intersection DSL — lights and conflict
pairs — gives it a MoCC (green/red alternation per light, green-phase
exclusion per conflict) in MoCCML text, maps it with ECL text, and
verifies safety over the complete scheduling state space.
"""

import pytest

from repro.ccsl.library import kernel_library
from repro.ecl import parse_ecl, weave
from repro.engine import AsapPolicy, RandomPolicy, Simulator, explore
from repro.engine.properties import never, occurs, together
from repro.kernel import MetamodelBuilder, Model
from repro.moccml.library import LibraryRegistry
from repro.moccml.text import parse_library
from repro.moccml.validate import assert_valid_library

TRAFFIC_MOCC = """
// Green phases of two conflicting lights must never overlap, with a
// one-step all-red clearance interval between handovers.
library TrafficLibrary {
  declaration GreenExclusion(firstGreen: event, firstRed: event,
                             secondGreen: event, secondRed: event)

  automaton GreenExclusionDef implements GreenExclusion {
    initial final state AllRed
    state FirstGreen
    state SecondGreen
    transition AllRed -> FirstGreen when {firstGreen} unless {secondGreen}
    transition AllRed -> SecondGreen when {secondGreen} unless {firstGreen}
    transition FirstGreen -> AllRed when {firstRed} unless {secondGreen}
    transition SecondGreen -> AllRed when {secondRed} unless {firstGreen}
  }
}
"""

TRAFFIC_MAPPING = """
context Light
  def: turnGreen : Event
  def: turnRed : Event
  -- each light alternates green, red, green, red ...
  inv Phases:
    Relation Alternates(self.turnGreen, self.turnRed)

context Conflict
  inv NoOverlap:
    Relation GreenExclusion(self.first.turnGreen, self.first.turnRed,
                            self.second.turnGreen, self.second.turnRed)
"""


def build_intersection():
    """Metamodel + one model: north/south and east/west conflicting."""
    b = MetamodelBuilder("Traffic")
    b.metaclass("Named", attributes={"name": "str"}, abstract=True)
    b.metaclass("Light", supertypes=["Named"])
    b.metaclass("Conflict", supertypes=["Named"], references={
        "first": ("Light", "required"), "second": ("Light", "required")})
    b.metaclass("Intersection", supertypes=["Named"], references={
        "lights": ("Light", "many", "containment"),
        "conflicts": ("Conflict", "many", "containment")})
    mm = b.build()

    model = Model(mm, "crossroads")
    intersection = model.create("Intersection", name="main")
    north_south = mm.instantiate("Light", name="ns")
    east_west = mm.instantiate("Light", name="ew")
    intersection.add("lights", north_south)
    intersection.add("lights", east_west)
    conflict = mm.instantiate("Conflict", name="cross")
    conflict.set("first", north_south)
    conflict.set("second", east_west)
    intersection.add("conflicts", conflict)
    return model


@pytest.fixture(scope="module")
def woven():
    registry = LibraryRegistry([kernel_library()])
    library = parse_library(TRAFFIC_MOCC)
    assert_valid_library(library, registry)
    registry.register(library)
    document = parse_ecl(TRAFFIC_MAPPING)
    return weave(document, build_intersection(), registry)


class TestWeaving:
    def test_events_per_light(self, woven):
        events = woven.execution_model.events
        assert set(events) == {"ns.turnGreen", "ns.turnRed",
                               "ew.turnGreen", "ew.turnRed"}

    def test_constraints(self, woven):
        labels = [c.label for c in woven.execution_model.constraints]
        assert sum("Phases" in label for label in labels) == 2
        assert sum("NoOverlap" in label for label in labels) == 1


class TestSafety:
    def test_greens_never_overlap_anywhere(self, woven):
        space = explore(woven.execution_model.clone())
        assert not space.truncated
        assert space.is_deadlock_free()
        # no step turns both green simultaneously
        assert never(space, together("ns.turnGreen", "ew.turnGreen"))
        # stronger: from any state where ns is green, ew cannot turn
        # green before ns turns red — encoded in the automaton, checked
        # by the absence of any interleaving violating it:
        for _u, _v, data in space.graph.edges(data=True):
            step = data["step"]
            assert not ("ew.turnGreen" in step and "ns.turnGreen" in step)

    def test_both_directions_live(self, woven):
        space = explore(woven.execution_model.clone())
        from repro.engine.properties import eventually_reachable
        assert eventually_reachable(space, occurs("ns.turnGreen"))
        assert eventually_reachable(space, occurs("ew.turnGreen"))

    def test_handover_needs_clearance_step(self, woven):
        # after ns turns red, ew may turn green only in a later step
        # (the automaton has no red->green handover within one step)
        space = explore(woven.execution_model.clone())
        for _u, _v, data in space.graph.edges(data=True):
            step = data["step"]
            if "ns.turnRed" in step:
                assert "ew.turnGreen" not in step


class TestSimulation:
    def test_random_runs_stay_safe(self, woven):
        for seed in range(5):
            result = Simulator(woven.execution_model.clone(),
                               RandomPolicy(seed=seed)).run(30)
            green = {"ns": False, "ew": False}
            for step in result.trace:
                for light in green:
                    if f"{light}.turnGreen" in step:
                        green[light] = True
                    if f"{light}.turnRed" in step:
                        green[light] = False
                assert not (green["ns"] and green["ew"])

    def test_asap_is_deterministic_but_can_starve(self, woven):
        # ASAP's lexicographic tie-break always picks the same singleton
        # step here: a fair scheduler is a policy choice, not a MoCC one
        result = Simulator(woven.execution_model.clone(),
                           AsapPolicy()).run(20)
        assert result.trace.count("ns.turnGreen") == 10
        assert result.trace.count("ew.turnGreen") == 0

    def test_random_policy_serves_both_directions(self, woven):
        result = Simulator(woven.execution_model.clone(),
                           RandomPolicy(seed=1)).run(40)
        assert result.trace.count("ns.turnGreen") > 0
        assert result.trace.count("ew.turnGreen") > 0
