"""LintSpec through the workbench, the store, and the CLI."""

import json

import pytest

from repro.cli import main
from repro.farm import ArtifactStore
from repro.workbench import LintSpec, RunSpec, Workbench
from tests.lint.conftest import CLEAN_CHAIN, INCONSISTENT


@pytest.fixture()
def chain_path(tmp_path):
    path = tmp_path / "chain.sigpml"
    path.write_text(CLEAN_CHAIN)
    return str(path)


@pytest.fixture()
def skewed_path(tmp_path):
    path = tmp_path / "skewed.sigpml"
    path.write_text(INCONSISTENT)
    return str(path)


class TestLintSpec:
    def test_roundtrip(self):
        spec = LintSpec("m", rules=("SDF001", "SDF004"), label="lab")
        doc = spec.to_doc()
        assert doc["kind"] == "lint"
        assert doc["rules"] == ["SDF001", "SDF004"]
        assert RunSpec.from_doc(doc) == spec

    def test_rules_default_to_all(self):
        spec = LintSpec("m")
        doc = spec.to_doc()
        assert "rules" not in doc
        assert RunSpec.from_doc(doc).rules is None


class TestWorkbenchLint:
    def test_lint_clean_model(self):
        workbench = Workbench()
        workbench.add(CLEAN_CHAIN, name="m")
        result = workbench.lint("m")
        assert result.ok
        assert result.data["ok"] is True
        assert "clean" in result.summary()

    def test_lint_defective_model(self):
        workbench = Workbench()
        workbench.add(INCONSISTENT, name="m")
        result = workbench.lint("m")
        assert result.ok  # the run succeeded; the model is dirty
        assert result.data["ok"] is False
        assert any(d["rule"] == "SDF001"
                   for d in result.data["diagnostics"])
        assert "ERRORS" in result.summary()

    def test_rule_filter_propagates(self):
        workbench = Workbench()
        workbench.add(CLEAN_CHAIN, name="m")
        result = workbench.lint("m", rules=("SDF004",))
        assert result.data["rules_run"] == 1

    def test_unknown_rule_errors_the_run(self):
        workbench = Workbench()
        workbench.add(CLEAN_CHAIN, name="m")
        result = workbench.run(LintSpec("m", rules=("NOPE01",)))
        assert not result.ok
        assert "NOPE01" in (result.error or "")

    def test_store_caches_lint_runs(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        for _ in range(2):
            workbench = Workbench(store=store)
            workbench.add(CLEAN_CHAIN, name="m")
            result = workbench.run(LintSpec("m"))
            assert result.ok
        stats = store.stats()
        assert stats["session"]["hits"] >= 1


class TestCliLint:
    def test_text_output_clean(self, chain_path, capsys):
        assert main(["lint", chain_path]) == 0
        out = capsys.readouterr().out
        assert "clean" in out
        assert "SDF004" in out

    def test_text_output_errors_exit_nonzero(self, skewed_path, capsys):
        assert main(["lint", skewed_path]) == 1
        out = capsys.readouterr().out
        assert "ERRORS" in out
        assert "SDF001" in out

    def test_json_output(self, chain_path, capsys):
        assert main(["lint", chain_path, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["data"]["ok"] is True

    def test_sarif_output(self, skewed_path, capsys):
        assert main(["lint", skewed_path, "--sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        assert any(r["ruleId"] == "SDF001"
                   for r in doc["runs"][0]["results"])

    def test_rule_filter_flag(self, chain_path, capsys):
        assert main(["lint", chain_path, "--rule", "SDF004",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["data"]["rules_run"] == 1


class TestSelftestLintPhase:
    def test_selftest_reports_static_analysis(self, capsys):
        assert main(["selftest", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["lint"]["agree"] is True
        assert doc["lint"]["errors_caught"] >= 1
        assert doc["lint"]["mismatches"] == []


def test_lint_spec_is_exported():
    import repro.workbench as wb

    assert wb.LintSpec is LintSpec
