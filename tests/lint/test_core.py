"""Diagnostics core: registry integrity, report round-trips, filtering."""

import pytest

from repro.lint import (
    RULES,
    Diagnostic,
    LintError,
    LintReport,
    lint_handle,
    rule_catalog,
)
from repro.lint.core import SEVERITIES, _ensure_rules_loaded

EXPECTED_RULES = {
    "SDF001", "SDF002", "SDF003", "SDF004", "SDF005",
    "CCS001", "CCS002", "CCS003", "CCS004",
    "MOC001", "MOC002",
    "DEP001", "DEP002", "DEP003", "DEP004",
    "KER001", "KER002", "KER003", "KER004",
    "ENC001",
}


class TestRegistry:
    def test_full_catalog_is_registered(self):
        _ensure_rules_loaded()
        assert set(RULES) == EXPECTED_RULES

    def test_catalog_entries_are_complete(self):
        for entry in rule_catalog():
            assert entry["rule"] in EXPECTED_RULES
            assert entry["severity"] in SEVERITIES
            assert entry["requires"]
            assert entry["summary"]
            assert entry["confirm"]

    def test_every_error_rule_has_a_confirmation_story(self):
        _ensure_rules_loaded()
        for rule in RULES.values():
            if rule.severity == "error":
                assert rule.confirm != "none", rule.rule_id


class TestDiagnostic:
    def test_roundtrip(self):
        diagnostic = Diagnostic(rule="SDF001", severity="error",
                                path="m.a", message="boom",
                                data={"agents": ["a"]})
        assert Diagnostic.from_doc(diagnostic.to_doc()) == diagnostic

    def test_unknown_severity_rejected(self):
        with pytest.raises(LintError):
            Diagnostic(rule="X", severity="fatal", path="p", message="m")


class TestLintHandle:
    def test_clean_model_report(self, clean_chain):
        report = lint_handle(clean_chain)
        assert report.ok
        assert report.errors == []
        assert report.rules_run > 0
        # the repetition vector is surfaced as an info finding
        assert any(d.rule == "SDF004" for d in report.diagnostics)

    def test_rule_filter(self, clean_chain):
        report = lint_handle(clean_chain, rules=("SDF004",))
        assert report.rules_run == 1
        assert {d.rule for d in report.diagnostics} <= {"SDF004"}

    def test_unknown_rule_filter_rejected(self, clean_chain):
        with pytest.raises(LintError, match="NOPE01"):
            lint_handle(clean_chain, rules=("NOPE01",))

    def test_output_is_deterministic(self, clean_chain):
        first = lint_handle(clean_chain).to_doc()
        second = lint_handle(clean_chain).to_doc()
        assert first == second

    def test_report_roundtrip(self, clean_chain):
        report = lint_handle(clean_chain)
        doc = report.to_doc()
        back = LintReport.from_doc(doc)
        assert back.to_doc() == doc
        assert back.ok == report.ok


class TestReportCounts:
    def test_counts_by_severity(self):
        report = LintReport(model="m", frontend="f", diagnostics=[
            Diagnostic(rule="A", severity="error", path="p", message="1"),
            Diagnostic(rule="B", severity="warning", path="p", message="2"),
            Diagnostic(rule="C", severity="warning", path="p", message="3"),
        ])
        doc = report.to_doc()
        assert doc["counts"] == {"error": 1, "warning": 2, "info": 0}
        assert not doc["ok"]
        assert not report.ok
