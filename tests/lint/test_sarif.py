"""SARIF rendering: valid 2.1.0 shape, levels, logical locations."""

import json

from repro.lint import lint_handle, sarif_doc
from repro.workbench import load
from tests.lint.conftest import INCONSISTENT


class TestSarifDoc:
    def test_single_report_is_wrapped(self, clean_chain):
        doc = sarif_doc(lint_handle(clean_chain))
        assert doc["version"] == "2.1.0"
        assert len(doc["runs"]) == 1
        assert doc["runs"][0]["tool"]["driver"]["name"] == "repro-lint"

    def test_error_maps_to_error_level(self):
        report = lint_handle(load(INCONSISTENT))
        doc = sarif_doc([report])
        results = doc["runs"][0]["results"]
        sdf001 = [r for r in results if r["ruleId"] == "SDF001"]
        assert sdf001 and all(r["level"] == "error" for r in sdf001)

    def test_info_maps_to_note_level(self, clean_chain):
        results = sarif_doc(lint_handle(clean_chain))["runs"][0]["results"]
        notes = [r for r in results if r["ruleId"] == "SDF004"]
        assert notes and all(r["level"] == "note" for r in notes)

    def test_only_used_rules_are_declared(self, clean_chain):
        report = lint_handle(clean_chain)
        doc = sarif_doc(report)
        declared = {r["id"] for r in
                    doc["runs"][0]["tool"]["driver"]["rules"]}
        assert declared == {d.rule for d in report.diagnostics}

    def test_locations_are_logical(self, clean_chain):
        report = lint_handle(clean_chain)
        for result in sarif_doc(report)["runs"][0]["results"]:
            [location] = result["locations"]
            [logical] = location["logicalLocations"]
            assert logical["fullyQualifiedName"]
            assert result["properties"]["model"] == report.model

    def test_doc_is_json_serializable(self, clean_chain):
        doc = sarif_doc(lint_handle(clean_chain))
        assert json.loads(json.dumps(doc)) == doc
