"""Shared fixtures: one loaded handle per defect the analyzer targets."""

import pytest

from repro.workbench import CcslSpec, load

CLEAN_CHAIN = """
application chain {
  agent src
  agent dst
  place src -> dst push 1 pop 1 capacity 2
}
"""

#: two places between the same agents with clashing rates: no positive
#: repetition vector exists
INCONSISTENT = """
application skewed {
  agent a
  agent b
  place a -> b push 2 pop 1 capacity 4
  place a -> b push 1 pop 1 capacity 4
}
"""

#: consistent rates, but the cycle starts empty: no first firing exists
STARVED_CYCLE = """
application starved {
  agent a
  agent b
  place a -> b push 1 pop 1 capacity 2
  place b -> a push 1 pop 1 capacity 2
}
"""


@pytest.fixture()
def clean_chain():
    return load(CLEAN_CHAIN)


@pytest.fixture()
def alternating_pair():
    return load(CcslSpec(name="pair", events=["a", "b"],
                         constraints=[("Alternates", ("a", "b"))]))
