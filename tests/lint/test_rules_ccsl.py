"""CCSL rules: stateless contradictions, strict cycles, parameters."""

from repro.lint import lint_handle
from repro.lint.rules_ccsl import precedence_edges
from repro.workbench import CcslSpec, load


def rules_of(handle, rule):
    return [d for d in lint_handle(handle).diagnostics if d.rule == rule]


def ccsl(name, events, constraints):
    return load(CcslSpec(name=name, events=events,
                         constraints=constraints))


class TestStatelessContradiction:
    def test_coincides_plus_excludes_kills_both(self):
        handle = ccsl("contra", ["x", "y"], [
            ("Coincides", ("x", "y")),
            ("Excludes", ("x", "y")),
        ])
        findings = rules_of(handle, "CCS001")
        assert {d.data["event"] for d in findings} == {"x", "y"}
        for finding in findings:
            assert finding.data["confirm"]["kind"] == "dead-event"

    def test_plain_coincides_is_clean(self):
        handle = ccsl("coinc", ["x", "y"], [("Coincides", ("x", "y"))])
        assert rules_of(handle, "CCS001") == []


class TestPrecedenceCycle:
    def test_alternates_cycle_kills_every_member(self):
        handle = ccsl("cycle", ["a", "b"], [
            ("Alternates", ("a", "b")),
            ("Alternates", ("b", "a")),
        ])
        findings = rules_of(handle, "CCS002")
        assert {d.data["event"] for d in findings} == {"a", "b"}
        assert all(d.data["cycle"] == ["a", "b"] for d in findings)

    def test_pure_causes_cycle_is_legal(self):
        # Causes edges are weak: simultaneous firing satisfies them
        handle = ccsl("weak", ["a", "b"], [
            ("Causes", ("a", "b")),
            ("Causes", ("b", "a")),
        ])
        assert rules_of(handle, "CCS002") == []

    def test_chain_without_cycle_is_clean(self):
        handle = ccsl("chain", ["a", "b", "c"], [
            ("Alternates", ("a", "b")),
            ("Alternates", ("b", "c")),
        ])
        assert rules_of(handle, "CCS002") == []

    def test_edge_extraction(self):
        handle = ccsl("edges", ["a", "b", "c"], [
            ("Alternates", ("a", "b")),
            ("Causes", ("b", "c")),
        ])
        edges = precedence_edges(handle.execution_model)
        strictness = {(c, e): strict for c, e, strict, _ in edges}
        assert strictness[("a", "b")] is True
        assert strictness[("b", "c")] is False


class TestUnconstrainedEvents:
    def test_free_clock_warns(self):
        handle = ccsl("free", ["a", "b", "ghost"],
                      [("Alternates", ("a", "b"))])
        [finding] = rules_of(handle, "CCS003")
        assert finding.severity == "warning"
        assert finding.data["event"] == "ghost"

    def test_sigpml_models_are_exempt(self, clean_chain):
        # every SigPML event is woven into constraints anyway, but the
        # rule is scoped to ccsl/moccml front-ends outright
        assert rules_of(clean_chain, "CCS003") == []


class TestParameterContradictions:
    def test_delay_deeper_than_bound(self):
        handle = ccsl("stuck", ["b", "d"], [
            ("DelayedFor", ("d", "b", 3)),
            ("BoundedPrecedes", ("b", "d", 1)),
        ])
        findings = rules_of(handle, "CCS004")
        assert any(d.data["event"] == "d" for d in findings)

    def test_delay_within_bound_is_clean(self):
        handle = ccsl("fits", ["b", "d"], [
            ("DelayedFor", ("d", "b", 1)),
            ("BoundedPrecedes", ("b", "d", 2)),
        ])
        assert rules_of(handle, "CCS004") == []

    def test_clashing_periodic_filters(self):
        handle = ccsl("clash", ["base", "f"], [
            ("PeriodicOn", ("f", "base", 2, 0)),
            ("PeriodicOn", ("f", "base", 2, 1)),
        ])
        findings = rules_of(handle, "CCS004")
        assert any(d.data["event"] == "f" for d in findings)

    def test_compatible_periodic_filters_are_clean(self):
        handle = ccsl("compat", ["base", "f"], [
            ("PeriodicOn", ("f", "base", 2, 1)),
            ("PeriodicOn", ("f", "base", 4, 1)),
        ])
        assert rules_of(handle, "CCS004") == []

    def test_all_zero_filter_word(self):
        # FilterBy(filtered, base, prefix_bits, prefix_len,
        #          period_bits, period_len): word 0(0)^ω keeps nothing
        handle = ccsl("zero", ["base", "f"], [
            ("FilterBy", ("f", "base", 0, 1, 0, 1)),
        ])
        findings = rules_of(handle, "CCS004")
        assert any(d.data["event"] == "f" for d in findings)
