"""KER rules: structured conformance diagnostics surfaced by lint."""

from types import SimpleNamespace

import pytest

from repro.kernel import Model, check_conformance
from repro.kernel.validation import (
    ConformanceDiagnostic,
    conformance_diagnostics,
)
from repro.lint import lint_handle
from tests.kernel.test_metamodel import build_library_metamodel


@pytest.fixture()
def mm():
    return build_library_metamodel()


def kernel_handle(model, name="kmodel"):
    """A minimal handle exposing only a source model: every rule except
    the KER family skips it."""
    return SimpleNamespace(name=name, frontend="kernel",
                           source_model=model, application=None,
                           execution_model=None, deployment=None,
                           source_doc=None)


class TestConformanceDiagnostics:
    def test_valid_model_is_clean(self, mm):
        model = Model(mm, "lib")
        model.create("Book", name="SICP", pages=657)
        assert conformance_diagnostics(model) == []

    def test_unset_required_attribute_is_ker001(self, mm):
        model = Model(mm)
        model.create("Book", pages=3)  # name unset
        [finding] = conformance_diagnostics(model)
        assert finding.rule == "KER001"
        assert finding.feature == "name"
        assert "required attribute" in finding.message

    def test_stray_reference_is_ker003(self, mm):
        model = Model(mm)
        reader = model.create("Reader", name="ada")
        stray = mm.instantiate("Book", name="stray", pages=1)
        reader.add("borrowed", stray)  # never added to the model
        findings = conformance_diagnostics(model)
        assert any(f.rule == "KER003" and f.feature == "borrowed"
                   for f in findings)

    def test_string_shim_matches_structured_messages(self, mm):
        model = Model(mm)
        model.create("Book", pages=3)
        structured = conformance_diagnostics(model)
        assert check_conformance(model) == [f.message for f in structured]
        assert [str(f) for f in structured] == [f.message
                                                for f in structured]

    def test_doc_shape(self):
        finding = ConformanceDiagnostic(rule="KER001", path="Book:?",
                                        feature="name", message="m")
        assert finding.to_doc() == {"rule": "KER001", "path": "Book:?",
                                    "feature": "name", "message": "m"}


class TestKernelLintRules:
    def test_ker001_surfaces_through_lint(self, mm):
        model = Model(mm)
        model.create("Book", pages=3)
        report = lint_handle(kernel_handle(model))
        [finding] = report.errors
        assert finding.rule == "KER001"
        assert finding.data["feature"] == "name"
        assert finding.data["confirm"] == {"kind": "conformance"}

    def test_clean_model_runs_only_kernel_rules(self, mm):
        model = Model(mm, "lib")
        model.create("Book", name="SICP", pages=657)
        report = lint_handle(kernel_handle(model))
        assert report.ok
        assert report.rules_run == 4  # KER001-KER004, nothing else
