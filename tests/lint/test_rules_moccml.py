"""MoCCML rules: the exact bounded local walk over automaton instances."""

from repro.lint import lint_handle
from repro.lint.rules_moccml import automaton_instances, local_walk
from repro.workbench import MoccmlSpec, load

LIBRARY = """
library LintLib {
  declaration Gate(a: event, b: event)
  automaton GateDef implements Gate {
    initial state Idle
    state Busy
    state Orphan
    transition Idle -> Busy when {a}
    transition Busy -> Idle when {b}
  }
  declaration Fork(a: event)
  automaton ForkDef implements Fork {
    initial state S
    state L
    transition S -> L when {a}
    transition S -> S when {a}
  }
}
"""


def moccml(name, events, constraints):
    return load(MoccmlSpec(name=name, events=events,
                           constraints=constraints,
                           library_text=LIBRARY))


def rules_of(handle, rule):
    return [d for d in lint_handle(handle).diagnostics if d.rule == rule]


class TestUnreachableStates:
    def test_orphan_state_is_moc001(self):
        handle = moccml("gated", ["x", "y"], [("Gate", ("x", "y"))])
        [finding] = rules_of(handle, "MOC001")
        assert finding.severity == "warning"
        assert finding.data["states"] == ["Orphan"]

    def test_walk_reaches_both_live_states(self):
        handle = moccml("gated", ["x", "y"], [("Gate", ("x", "y"))])
        [runtime] = automaton_instances(handle.execution_model)
        walk = local_walk(runtime)
        assert walk["states"] == {"Idle", "Busy"}


class TestOverlappingGuards:
    def test_double_transition_is_moc002(self):
        handle = moccml("forked", ["x"], [("Fork", ("x",))])
        findings = rules_of(handle, "MOC002")
        assert findings, "the two S-transitions overlap on {x}"
        assert findings[0].data["state"] == "S"
        assert findings[0].data["step"] == ["x"]
        assert "first declared wins" in findings[0].message

    def test_deterministic_automaton_is_clean(self):
        handle = moccml("gated", ["x", "y"], [("Gate", ("x", "y"))])
        assert rules_of(handle, "MOC002") == []


class TestWalkBounds:
    def test_oversized_alphabet_skips_the_walk(self):
        class FatRuntime:
            constrained_events = frozenset(f"e{i}" for i in range(9))

        assert local_walk(FatRuntime()) is None
