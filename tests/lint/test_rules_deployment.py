"""Deployment rules: allocation pre-checks, platform pressure findings."""

from repro.deployment import parse_platform
from repro.deployment.allocation import Allocation
from repro.lint import lint_handle
from repro.lint.rules_deployment import allocation_diagnostics
from repro.workbench import DeploymentSpec, load

APPLICATION = """
application pipeline {
  agent src
  agent dst
  place src -> dst push 1 pop 1 capacity 2
}
"""

PLATFORM = """
platform board {
  processor cpu
  processor dsp
  link cpu <-> dsp latency 2
}
"""


def platform():
    return parse_platform(PLATFORM)


def app():
    return load(APPLICATION).application


class TestAllocationDiagnostics:
    """DEP001/DEP002 fire pre-deploy: ``deploy()`` refuses these
    allocations outright, so the rules are exercised through
    :func:`allocation_diagnostics` on candidate triples."""

    def test_total_allocation_is_clean(self):
        allocation = Allocation({"src": "cpu", "dst": "dsp"})
        assert allocation_diagnostics(app(), platform(), allocation) == []

    def test_missing_agent_is_dep001(self):
        allocation = Allocation({"src": "cpu"})
        [finding] = allocation_diagnostics(app(), platform(), allocation)
        assert finding.rule == "DEP001"
        assert finding.data["agent"] == "dst"
        assert finding.data["confirm"] == {"kind": "deploy-error"}

    def test_unknown_agent_is_dep002(self):
        allocation = Allocation({"src": "cpu", "dst": "dsp",
                                 "ghost": "cpu"})
        [finding] = allocation_diagnostics(app(), platform(), allocation)
        assert finding.rule == "DEP002"
        assert "ghost" in finding.message

    def test_unknown_processor_is_dep002(self):
        allocation = Allocation({"src": "cpu", "dst": "gpu"})
        [finding] = allocation_diagnostics(app(), platform(), allocation)
        assert finding.rule == "DEP002"
        assert finding.data["processor"] == "gpu"


class TestWovenFindings:
    def test_shared_processor_is_dep003(self):
        handle = load(DeploymentSpec(
            application=APPLICATION,
            deployment="platform solo {\n  processor cpu\n}\n"
                       "allocation {\n  src, dst -> cpu\n}\n"))
        report = lint_handle(handle)
        [finding] = [d for d in report.diagnostics if d.rule == "DEP003"]
        assert finding.severity == "warning"
        assert finding.data["agents"] == ["src", "dst"]
        # loaded handles are never DEP001/DEP002: deploy() enforces it
        assert not any(d.rule in ("DEP001", "DEP002")
                       for d in report.diagnostics)

    def test_cross_processor_place_is_dep004(self):
        handle = load(DeploymentSpec(
            application=APPLICATION,
            deployment=PLATFORM
            + "allocation {\n  src -> cpu\n  dst -> dsp\n}\n"))
        report = lint_handle(handle)
        [finding] = [d for d in report.diagnostics if d.rule == "DEP004"]
        assert finding.severity == "info"
        assert finding.data["latency"] == 2
        assert not any(d.rule == "DEP003" for d in report.diagnostics)
