"""Static↔dynamic cross-check: every lint claim must replay on the
engine, and the encodability predictor must match the actual compile."""

from types import SimpleNamespace

from repro.lint import crosscheck_corpus, crosscheck_handle, lint_handle
from repro.lint.core import Diagnostic, LintReport
from repro.workbench import CcslSpec, load
from tests.engine.test_symbolic_equivalence import CORPUS
from tests.lint.conftest import CLEAN_CHAIN, INCONSISTENT, STARVED_CYCLE


class TestConfirmedClaims:
    def test_clean_model_agrees(self, clean_chain):
        result = crosscheck_handle(clean_chain)
        assert result["agree"], result["mismatches"]
        # the repetition-vector info claim was replayed via an ASAP run
        assert any(check["kind"] == "repetition"
                   for check in result["checks"])

    def test_inconsistent_graph_deadlock_confirms(self):
        result = crosscheck_handle(load(INCONSISTENT))
        assert result["agree"], result["mismatches"]
        assert any(check["kind"] == "deadlock" and check["ok"]
                   for check in result["checks"])

    def test_starved_cycle_deadlock_confirms(self):
        result = crosscheck_handle(load(STARVED_CYCLE))
        assert result["agree"], result["mismatches"]

    def test_dead_events_confirm(self):
        handle = load(CcslSpec(name="cycle", events=["a", "b"],
                               constraints=[("Alternates", ("a", "b")),
                                            ("Alternates", ("b", "a"))]))
        result = crosscheck_handle(handle)
        assert result["agree"], result["mismatches"]
        dead = [check for check in result["checks"]
                if check["kind"] == "dead-event"]
        assert len(dead) == 2 and all(check["ok"] for check in dead)


class TestPredictorAgreement:
    def test_unencodable_model_agrees(self):
        handle = load(CcslSpec(name="unbounded", events=["a", "b"],
                               constraints=[("Precedes", ("a", "b"))]))
        result = crosscheck_handle(handle)
        assert result["agree"], result["mismatches"]
        [enc] = [check for check in result["checks"]
                 if check["kind"] == "encodability"]
        assert "encodable=False" in enc["detail"]

    def test_encodable_model_agrees(self, alternating_pair):
        result = crosscheck_handle(alternating_pair)
        assert result["agree"], result["mismatches"]


class TestMismatchDetection:
    """A wrong claim must be reported, never silently dropped."""

    def _report_with(self, handle, diagnostic):
        return LintReport(model=handle.name, frontend=handle.frontend,
                          diagnostics=[diagnostic], rules_run=1)

    def test_false_dead_event_claim_is_a_mismatch(self, alternating_pair):
        bogus = Diagnostic(
            rule="CCS002", severity="error", path="pair.a",
            message="bogus", data={"confirm": {"kind": "dead-event",
                                               "event": "a"}})
        result = crosscheck_handle(
            alternating_pair, self._report_with(alternating_pair, bogus))
        assert not result["agree"]

    def test_error_without_confirm_is_a_mismatch(self, alternating_pair):
        naked = Diagnostic(rule="CCS002", severity="error",
                           path="pair.a", message="no confirm")
        result = crosscheck_handle(
            alternating_pair, self._report_with(alternating_pair, naked))
        assert any("without a confirm descriptor" in m
                   for m in result["mismatches"])

    def test_unknown_confirm_kind_is_a_mismatch(self, alternating_pair):
        weird = Diagnostic(
            rule="CCS002", severity="error", path="pair.a",
            message="weird", data={"confirm": {"kind": "martian"}})
        result = crosscheck_handle(
            alternating_pair, self._report_with(alternating_pair, weird))
        assert any("no confirmer" in m for m in result["mismatches"])


class TestCorpus:
    def test_corpus_aggregation(self, clean_chain, alternating_pair):
        handles = [clean_chain, alternating_pair,
                   load(INCONSISTENT), load(STARVED_CYCLE)]
        result = crosscheck_corpus(handles)
        assert result["models"] == 4
        assert result["agree"], result["mismatches"]
        assert result["checks"] >= 4  # at least the predictor per model

    def test_equivalence_corpus_is_green(self):
        """Every model the symbolic-equivalence harness already trusts
        must cross-check green: no unconfirmable lint error, and no
        predictor miss (the corpus is symbolic-encodable by design)."""
        handles = []
        for name in sorted(CORPUS):
            model = CORPUS[name]()
            handles.append(SimpleNamespace(
                name=name, frontend="moccml", execution_model=model,
                source_model=None, application=None, deployment=None,
                source_doc=None))
        result = crosscheck_corpus(handles)
        assert result["models"] == len(CORPUS)
        assert result["agree"], result["mismatches"]

    def test_component_projection_confirms(self):
        handle = load("""
        application twocomp {
          agent a
          agent b
          agent c
          agent d
          place a -> b push 1 pop 1 capacity 2
          place c -> d push 2 pop 1 capacity 4
          place c -> d push 1 pop 1 capacity 4
        }
        """)
        report = lint_handle(handle)
        assert any(d.rule == "SDF001" for d in report.errors)
        result = crosscheck_handle(handle, report)
        assert result["agree"], result["mismatches"]
