"""SDF rules: balance equations, schedulability, dead actors."""

from repro.lint import lint_handle
from repro.lint.rules_sdf import (
    component_doc,
    component_rates,
    graph_components,
    greedy_pass,
)
from repro.workbench import load, source_from_doc
from tests.lint.conftest import INCONSISTENT, STARVED_CYCLE


def rules_of(handle, rule):
    return [d for d in lint_handle(handle).diagnostics if d.rule == rule]


class TestBalanceEquations:
    def test_inconsistent_graph_is_sdf001(self):
        handle = load(INCONSISTENT)
        findings = rules_of(handle, "SDF001")
        assert len(findings) == 1
        assert findings[0].severity == "error"
        assert findings[0].data["agents"] == ["a", "b"]
        assert findings[0].data["confirm"]["kind"] == "deadlock"

    def test_consistent_graph_has_rates(self, clean_chain):
        assert rules_of(clean_chain, "SDF001") == []
        [component] = graph_components(clean_chain.application)
        assert component_rates(component) == {"src": 1, "dst": 1}

    def test_multirate_vector(self):
        handle = load("""
        application multirate {
          agent fast
          agent slow
          place fast -> slow push 1 pop 3 capacity 3
        }
        """)
        [component] = graph_components(handle.application)
        assert component_rates(component) == {"fast": 3, "slow": 1}
        [info] = rules_of(handle, "SDF004")
        assert info.data["repetition"] == {"fast": 3, "slow": 1}


class TestSchedulability:
    def test_starved_cycle_is_sdf002(self):
        handle = load(STARVED_CYCLE)
        findings = rules_of(handle, "SDF002")
        assert len(findings) == 1
        assert findings[0].data["confirm"]["kind"] == "deadlock"

    def test_primed_cycle_is_clean(self):
        handle = load("""
        application primed {
          agent a
          agent b
          place a -> b push 1 pop 1 capacity 2
          place b -> a push 1 pop 1 capacity 2 delay 1
        }
        """)
        assert rules_of(handle, "SDF002") == []
        [component] = graph_components(handle.application)
        rates = component_rates(component)
        assert greedy_pass(component, rates, bounded=False) is not None


class TestDeadActors:
    def test_self_starved_agent_is_sdf003(self):
        handle = load("""
        application selfloop {
          agent a
          agent b
          place a -> b push 1 pop 1 capacity 2
          place b -> b push 1 pop 2 capacity 4
        }
        """)
        [finding] = rules_of(handle, "SDF003")
        assert finding.data["agent"] == "b"
        assert finding.data["confirm"] == {"kind": "dead-event",
                                           "event": "b.start"}

    def test_live_graph_has_no_dead_actors(self, clean_chain):
        assert rules_of(clean_chain, "SDF003") == []


class TestComponentProjection:
    def test_component_doc_reloads_standalone(self):
        handle = load("""
        application twocomp {
          agent a
          agent b
          agent c
          agent d
          place a -> b push 1 pop 1 capacity 2
          place c -> d push 2 pop 1 capacity 4
          place c -> d push 1 pop 1 capacity 4
        }
        """)
        components = graph_components(handle.application)
        assert [c["agents"] for c in components] == [["a", "b"],
                                                     ["c", "d"]]
        # only the second component is defective; its diagnostic marks
        # itself component-local so the cross-check projects it
        [finding] = rules_of(handle, "SDF001")
        assert finding.data["agents"] == ["c", "d"]
        assert finding.data["confirm"]["project"] is True
        projected = load(source_from_doc(
            component_doc(handle, ["c", "d"])))
        assert sorted({e.split(".")[0]
                       for e in projected.execution_model.events
                       if e.endswith(".start")}) == ["c", "d"]
