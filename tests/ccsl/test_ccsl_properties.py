"""Property-based tests for CCSL relations against reference semantics.

Each relation is driven with random step sequences; acceptance is
compared against an independently coded reference over the full history
(occurrence counts), and internal counters are cross-checked.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.ccsl import (
    AlternatesRuntime,
    BinaryWord,
    CausesRuntime,
    DelayedForRuntime,
    FilterByRuntime,
    PrecedesRuntime,
)

steps2 = st.lists(
    st.sampled_from([frozenset(), frozenset({"a"}), frozenset({"b"}),
                     frozenset({"a", "b"})]),
    max_size=30)


def drive(runtime, steps):
    """Advance through the steps the runtime accepts; return the prefix
    of accepted steps (acceptance checked via the step formula)."""
    accepted = []
    for step in steps:
        formula = runtime.step_formula()
        support = formula.support() | runtime.constrained_events
        ok = formula.evaluate({name: name in step for name in support})
        if not ok:
            break
        runtime.advance(step)
        accepted.append(step)
    return accepted


@settings(max_examples=100, deadline=None)
@given(steps2)
def test_precedes_counts_never_negative(steps):
    runtime = PrecedesRuntime("a", "b")
    accepted = drive(runtime, steps)
    count_a = sum(1 for step in accepted if "a" in step)
    count_b = sum(1 for step in accepted if "b" in step)
    assert count_a >= count_b
    assert runtime.advance_count == count_a - count_b
    # strictness: at every prefix, b never overtakes a
    running_a = running_b = 0
    for step in accepted:
        if "b" in step:
            assert running_a > running_b  # strictly earlier 'a' exists
        running_a += "a" in step
        running_b += "b" in step


@settings(max_examples=100, deadline=None)
@given(steps2)
def test_causes_allows_simultaneity_but_no_overtake(steps):
    runtime = CausesRuntime("a", "b")
    accepted = drive(runtime, steps)
    running_a = running_b = 0
    for step in accepted:
        running_a += "a" in step
        running_b += "b" in step
        assert running_a >= running_b


@settings(max_examples=100, deadline=None)
@given(steps2)
def test_alternates_difference_bounded_by_one(steps):
    runtime = AlternatesRuntime("a", "b")
    accepted = drive(runtime, steps)
    running_a = running_b = 0
    for step in accepted:
        assert not ("a" in step and "b" in step)  # never simultaneous
        running_a += "a" in step
        running_b += "b" in step
        assert 0 <= running_a - running_b <= 1


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=0, max_value=4), steps2)
def test_delayed_for_reference(depth, steps):
    # reference: d must tick exactly with the base occurrences whose
    # 0-based index is >= depth
    runtime = DelayedForRuntime("b", "a", depth)  # delayed=b, base=a
    accepted = drive(runtime, steps)
    base_index = 0
    for step in accepted:
        if "a" in step:
            expected_delayed = base_index >= depth
            assert ("b" in step) == expected_delayed
            base_index += 1
        else:
            assert "b" not in step


@settings(max_examples=100, deadline=None)
@given(st.text(alphabet="01", max_size=3),
       st.text(alphabet="01", min_size=1, max_size=4),
       steps2)
def test_filter_by_reference(prefix, period, steps):
    word = BinaryWord(prefix=prefix, period=period)
    runtime = FilterByRuntime("b", "a", word)  # filtered=b, base=a
    accepted = drive(runtime, steps)
    base_index = 0
    for step in accepted:
        if "a" in step:
            assert ("b" in step) == word[base_index]
            base_index += 1
        else:
            assert "b" not in step


@settings(max_examples=50, deadline=None)
@given(steps2)
def test_clone_transparency(steps):
    """Driving a clone produces exactly the same acceptance as the
    original (no shared mutable state, same semantics)."""
    original = PrecedesRuntime("a", "b", bound=2)
    accepted = drive(original, steps)
    replay = PrecedesRuntime("a", "b", bound=2)
    for step in accepted:
        replay = replay.clone()
        replay.advance(step)
    assert replay.advance_count == original.advance_count
