"""Tests for the CCSL kernel relations (stateless and stateful)."""

import pytest

from repro.ccsl import (
    AlternatesRuntime,
    CausesRuntime,
    DeadlineRuntime,
    DelayedForRuntime,
    PeriodicOnRuntime,
    PrecedesRuntime,
    SampledOnRuntime,
    coincides,
    excludes,
    intersection,
    kernel_library,
    minus,
    subclock,
    union,
)
from repro.errors import SemanticsError
from repro.moccml.library import LibraryRegistry


def accepts(runtime, *events):
    step = frozenset(events)
    formula = runtime.step_formula()
    support = formula.support() | runtime.constrained_events
    return formula.evaluate({name: name in step for name in support})


def run(runtime, steps):
    for step in steps:
        runtime.advance(frozenset(step))


class TestStateless:
    def test_subclock_is_implication(self):
        relation = subclock("a", "b")
        assert accepts(relation, "a", "b")
        assert accepts(relation, "b")
        assert accepts(relation)
        assert not accepts(relation, "a")

    def test_coincides(self):
        relation = coincides("a", "b")
        assert accepts(relation, "a", "b")
        assert accepts(relation)
        assert not accepts(relation, "a")

    def test_excludes(self):
        relation = excludes("a", "b")
        assert accepts(relation, "a")
        assert accepts(relation, "b")
        assert not accepts(relation, "a", "b")

    def test_union(self):
        relation = union("u", "a", "b")
        assert accepts(relation, "u", "a")
        assert accepts(relation, "u", "a", "b")
        assert accepts(relation)
        assert not accepts(relation, "a")
        assert not accepts(relation, "u")

    def test_intersection(self):
        relation = intersection("i", "a", "b")
        assert accepts(relation, "i", "a", "b")
        assert accepts(relation, "a")
        assert not accepts(relation, "a", "b")
        assert not accepts(relation, "i", "a")

    def test_minus(self):
        relation = minus("m", "a", "b")
        assert accepts(relation, "m", "a")
        assert accepts(relation, "a", "b")
        assert not accepts(relation, "a")
        assert not accepts(relation, "m", "a", "b")

    def test_advance_raises_on_violation(self):
        relation = subclock("a", "b")
        with pytest.raises(SemanticsError):
            relation.advance(frozenset({"a"}))


class TestPrecedes:
    def test_effect_blocked_initially(self):
        relation = PrecedesRuntime("c", "e")
        assert not accepts(relation, "e")
        assert accepts(relation, "c")

    def test_effect_allowed_after_cause(self):
        relation = PrecedesRuntime("c", "e")
        run(relation, [{"c"}])
        assert accepts(relation, "e")
        run(relation, [{"e"}])
        assert not accepts(relation, "e")

    def test_simultaneous_not_allowed_when_empty(self):
        relation = PrecedesRuntime("c", "e")
        assert not accepts(relation, "c", "e")

    def test_simultaneous_allowed_with_advance(self):
        relation = PrecedesRuntime("c", "e")
        run(relation, [{"c"}])
        assert accepts(relation, "c", "e")

    def test_bound_blocks_cause(self):
        relation = PrecedesRuntime("c", "e", bound=2)
        run(relation, [{"c"}, {"c"}])
        assert not accepts(relation, "c")
        # strictness: a simultaneous effect does not free the slot
        assert not accepts(relation, "c", "e")
        assert accepts(relation, "e")

    def test_violation_detected_on_advance(self):
        relation = PrecedesRuntime("c", "e")
        with pytest.raises(SemanticsError):
            relation.advance(frozenset({"e"}))

    def test_bad_bound(self):
        with pytest.raises(SemanticsError):
            PrecedesRuntime("c", "e", bound=0)

    def test_clone_preserves_counter(self):
        relation = PrecedesRuntime("c", "e")
        run(relation, [{"c"}, {"c"}])
        copy = relation.clone()
        assert copy.state_key() == relation.state_key()
        run(relation, [{"e"}])
        assert copy.state_key() != relation.state_key()


class TestCauses:
    def test_simultaneous_allowed(self):
        relation = CausesRuntime("c", "e")
        assert accepts(relation, "c", "e")
        assert not accepts(relation, "e")

    def test_after_advance_effect_alone_ok(self):
        relation = CausesRuntime("c", "e")
        run(relation, [{"c"}])
        assert accepts(relation, "e")


class TestAlternates:
    def test_strict_alternation(self):
        relation = AlternatesRuntime("a", "b")
        assert accepts(relation, "a")
        assert not accepts(relation, "b")
        run(relation, [{"a"}])
        assert not accepts(relation, "a")
        assert accepts(relation, "b")
        run(relation, [{"b"}])
        assert accepts(relation, "a")

    def test_property_no_double_fire(self):
        # along any run a b a b..., counts differ by at most 1
        relation = AlternatesRuntime("a", "b")
        sequence = [{"a"}, {"b"}] * 5
        run(relation, sequence)
        assert relation.advance_count == 0


class TestDelayedFor:
    def test_skips_first_n(self):
        relation = DelayedForRuntime("d", "b", 2)
        assert not accepts(relation, "b", "d")
        assert accepts(relation, "b")
        run(relation, [{"b"}, {"b"}])
        # third base occurrence must now coincide with d
        assert accepts(relation, "b", "d")
        assert not accepts(relation, "b")

    def test_zero_depth_is_coincidence(self):
        relation = DelayedForRuntime("d", "b", 0)
        assert accepts(relation, "b", "d")
        assert not accepts(relation, "b")
        assert not accepts(relation, "d")

    def test_negative_depth_rejected(self):
        with pytest.raises(SemanticsError):
            DelayedForRuntime("d", "b", -1)


class TestPeriodicOn:
    def test_every_third(self):
        relation = PeriodicOnRuntime("f", "b", period=3, offset=0)
        # base index 0 -> filtered fires with base
        assert accepts(relation, "b", "f")
        run(relation, [{"b", "f"}])
        assert accepts(relation, "b")
        assert not accepts(relation, "b", "f")
        run(relation, [{"b"}, {"b"}])
        assert accepts(relation, "b", "f")

    def test_offset(self):
        relation = PeriodicOnRuntime("f", "b", period=2, offset=1)
        assert not accepts(relation, "b", "f")
        run(relation, [{"b"}])
        assert accepts(relation, "b", "f")

    def test_parameter_validation(self):
        with pytest.raises(SemanticsError):
            PeriodicOnRuntime("f", "b", period=0)
        with pytest.raises(SemanticsError):
            PeriodicOnRuntime("f", "b", period=2, offset=2)


class TestSampledOn:
    def test_sample_after_trigger(self):
        relation = SampledOnRuntime("s", "t", "b")
        assert not accepts(relation, "b", "s")  # nothing pending
        assert accepts(relation, "b")
        run(relation, [{"t"}])
        assert accepts(relation, "b", "s")
        assert not accepts(relation, "b")  # pending sample must fire

    def test_simultaneous_trigger_and_base(self):
        relation = SampledOnRuntime("s", "t", "b")
        assert accepts(relation, "t", "b", "s")
        run(relation, [{"t", "b", "s"}])
        # consumed: nothing pending anymore
        assert not accepts(relation, "b", "s")

    def test_pending_persists(self):
        relation = SampledOnRuntime("s", "t", "b")
        run(relation, [{"t"}, {"t"}])
        assert accepts(relation, "b", "s")


class TestDeadline:
    def test_deadline_forces_finish(self):
        relation = DeadlineRuntime("start", "finish", budget=2)
        run(relation, [{"start"}, set(), set()])
        # budget exhausted: finish is forced now
        assert not accepts(relation)
        assert accepts(relation, "finish")

    def test_finish_disarms(self):
        relation = DeadlineRuntime("start", "finish", budget=2)
        run(relation, [{"start"}, {"finish"}, set(), set(), set()])
        assert accepts(relation)

    def test_missed_deadline_raises(self):
        relation = DeadlineRuntime("start", "finish", budget=0)
        run(relation, [{"start"}])
        with pytest.raises(SemanticsError):
            relation.advance(frozenset())


class TestKernelLibrary:
    def test_all_declarations_have_definitions(self):
        library = kernel_library()
        for declaration in library.declarations():
            assert library.definition_for(declaration.name) is not None

    def test_instantiate_alternates_via_registry(self):
        registry = LibraryRegistry([kernel_library()])
        relation = registry.instantiate("Alternates", ["x", "y"])
        assert accepts(relation, "x")
        assert not accepts(relation, "y")

    def test_instantiate_bounded_precedes(self):
        registry = LibraryRegistry([kernel_library()])
        relation = registry.instantiate("BoundedPrecedes", ["x", "y", 3])
        assert relation.bound == 3

    def test_qualified_names(self):
        registry = LibraryRegistry([kernel_library()])
        relation = registry.instantiate("CCSLKernel.SubClock", ["x", "y"])
        assert accepts(relation, "x", "y")
