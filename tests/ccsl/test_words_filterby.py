"""Tests for periodic binary words and the FilterBy relation."""

import pytest

from repro.ccsl import BinaryWord, FilterByRuntime, kernel_library
from repro.errors import ParseError, SemanticsError
from repro.moccml.library import LibraryRegistry


class TestBinaryWord:
    def test_parse_prefix_and_period(self):
        word = BinaryWord.parse("1(10)")
        assert word.prefix == "1"
        assert word.period == "10"
        assert [word[i] for i in range(6)] == [
            True, True, False, True, False, True]

    def test_parse_pure_period(self):
        word = BinaryWord.parse("(01)")
        assert [word[i] for i in range(4)] == [False, True, False, True]

    def test_parse_finite_word(self):
        word = BinaryWord.parse("110")
        assert [word[i] for i in range(6)] == [
            True, True, False, False, False, False]

    def test_parse_errors(self):
        for bad in ("", "2(01)", "1(1", "1()", "abc"):
            with pytest.raises(ParseError):
                BinaryWord.parse(bad)

    def test_from_ints(self):
        # prefix '1' (bits=1, len=1); period '10' -> LSB-first bits 0b01
        word = BinaryWord.from_ints(1, 1, 0b01, 2)
        assert word == BinaryWord.parse("1(10)")

    def test_from_ints_validation(self):
        with pytest.raises(ParseError):
            BinaryWord.from_ints(0, 0, 0, 0)
        with pytest.raises(ParseError):
            BinaryWord.from_ints(0, -1, 1, 1)

    def test_state_canonicalization(self):
        word = BinaryWord.parse("1(10)")
        # indices 1 and 3 are both 'first position of the period'
        assert word.state_of(1) == word.state_of(3)
        assert word.state_of(0) == 0

    def test_negative_index(self):
        with pytest.raises(IndexError):
            BinaryWord.parse("(1)")[-1]


def accepts(runtime, *events):
    step = frozenset(events)
    formula = runtime.step_formula()
    support = formula.support() | runtime.constrained_events
    return formula.evaluate({name: name in step for name in support})


class TestFilterBy:
    def test_every_other(self):
        relation = FilterByRuntime("f", "b", "(10)")
        assert accepts(relation, "b", "f")
        relation.advance(frozenset({"b", "f"}))
        assert accepts(relation, "b")
        assert not accepts(relation, "b", "f")
        relation.advance(frozenset({"b"}))
        assert accepts(relation, "b", "f")

    def test_prefix_then_period(self):
        relation = FilterByRuntime("f", "b", "0(1)")
        assert not accepts(relation, "b", "f")
        relation.advance(frozenset({"b"}))
        # after the prefix, every base occurrence is kept
        for _ in range(3):
            assert accepts(relation, "b", "f")
            relation.advance(frozenset({"b", "f"}))

    def test_violation_raises(self):
        relation = FilterByRuntime("f", "b", "(10)")
        with pytest.raises(SemanticsError):
            relation.advance(frozenset({"b"}))  # f was required

    def test_state_key_is_periodic(self):
        relation = FilterByRuntime("f", "b", "(10)")
        initial_key = relation.state_key()
        relation.advance(frozenset({"b", "f"}))
        relation.advance(frozenset({"b"}))
        assert relation.state_key() == initial_key

    def test_clone(self):
        relation = FilterByRuntime("f", "b", "1(10)")
        relation.advance(frozenset({"b", "f"}))
        copy = relation.clone()
        assert copy.state_key() == relation.state_key()
        relation.advance(frozenset({"b", "f"}))
        assert copy.state_key() != relation.state_key()

    def test_exploration_stays_finite(self):
        from repro.engine import ExecutionModel, explore
        model = ExecutionModel(
            ["b", "f"], [FilterByRuntime("f", "b", "11(100)")])
        space = explore(model, max_states=100)
        # states bounded by prefix + period positions
        assert not space.truncated
        assert space.n_states <= 5

    def test_via_kernel_library(self):
        registry = LibraryRegistry([kernel_library()])
        relation = registry.instantiate(
            "FilterBy", ["f", "b", 1, 1, 0b01, 2])
        assert relation.word == BinaryWord.parse("1(10)")

    def test_periodic_on_equivalence(self):
        # PeriodicOn(period=3, offset=1) == FilterBy("(010)")
        from repro.ccsl import PeriodicOnRuntime
        periodic = PeriodicOnRuntime("f", "b", period=3, offset=1)
        filtered = FilterByRuntime("f", "b", "(010)")
        sequence = [{"b"}, {"b", "f"}, {"b"}, {"b"}, {"b", "f"}, {"b"}]
        for step in sequence:
            step = frozenset(step)
            assert accepts(periodic, *step) == accepts(filtered, *step)
            periodic.advance(step)
            filtered.advance(step)
