"""Tests for the ECL mapping language: parsing and weaving (Listing 1)."""

import pytest

from repro.ecl import parse_ecl, weave
from repro.ecl.ast import IntLiteral, Navigation
from repro.errors import MappingError, ParseError
from repro.moccml.library import LibraryRegistry
from repro.ccsl.library import kernel_library
from repro.sdf import SdfBuilder, sdf_library

LISTING1 = """
context Agent
  def : start : Event
  def : stop : Event
  def : isExecuting : Event
context Place
  inv PlaceLimitation:
    Relation PlaceConstraint(self.outputPort.write, self.inputPort.read,
        self.outputPort.rate, self.inputPort.rate, self.delay,
        self.capacity)
"""


class TestParser:
    def test_listing1_structure(self):
        document = parse_ecl(LISTING1)
        assert len(document.contexts) == 2
        agent_context = document.context_for("Agent")
        assert [d.name for d in agent_context.event_defs] == [
            "start", "stop", "isExecuting"]
        place_context = document.context_for("Place")
        invariant = place_context.invariants[0]
        assert invariant.name == "PlaceLimitation"
        assert invariant.call.constraint_name == "PlaceConstraint"
        assert len(invariant.call.arguments) == 6
        assert invariant.call.arguments[0] == Navigation(
            "self.outputPort.write")

    def test_int_literal_argument(self):
        document = parse_ecl(
            "context A\n  inv I:\n    Relation C(self.e, 42)\n")
        invariant = document.contexts[0].invariants[0]
        assert invariant.call.arguments[1] == IntLiteral(42)

    def test_expression_argument(self):
        document = parse_ecl(
            "context A\n  inv I:\n    Relation C(self.e, self.rate * 2)\n")
        argument = document.contexts[0].invariants[0].call.arguments[1]
        assert argument.names() == frozenset({"self.rate"})

    def test_comments_stripped(self):
        document = parse_ecl(
            "-- heading\ncontext A // trailing\n  def: e : Event\n")
        assert document.contexts[0].event_defs[0].name == "e"

    def test_def_without_colon_prefix(self):
        document = parse_ecl("context A\n  def e : Event\n")
        assert document.contexts[0].event_defs[0].name == "e"

    def test_statement_outside_context(self):
        with pytest.raises(ParseError):
            parse_ecl("def: e : Event\n")

    def test_bad_invariant(self):
        with pytest.raises(ParseError):
            parse_ecl("context A\n  inv I: whatever here\n")

    def test_unbalanced_parens(self):
        with pytest.raises(ParseError):
            parse_ecl("context A\n  inv I:\n    Relation C(self.e\n")


@pytest.fixture()
def sdf_setup():
    builder = SdfBuilder("two-agents")
    builder.agent("prod")
    builder.agent("cons")
    builder.connect("prod", "cons", push=1, pop=1, capacity=2, delay=0,
                    name="buf")
    model, app = builder.build()
    registry = LibraryRegistry([kernel_library(), sdf_library()])
    return model, app, registry


MINI_MAPPING = """
context Agent
  def: start : Event
  def: stop : Event
  def: isExecuting : Event
context OutputPort
  def: write : Event
context InputPort
  def: read : Event
context Place
  inv PlaceLimitation:
    Relation PlaceConstraint(self.outputPort.write, self.inputPort.read,
        self.outputPort.rate, self.inputPort.rate, self.delay,
        self.capacity)
"""


class TestWeaver:
    def test_events_created_per_instance(self, sdf_setup):
        model, app, registry = sdf_setup
        result = weave(parse_ecl(MINI_MAPPING), model, registry)
        events = result.execution_model.events
        # 2 agents x 3 events + 1 write + 1 read
        assert len(events) == 8
        assert "prod.start" in events
        assert "cons.isExecuting" in events
        assert "buf.out.write" in events
        assert "buf.in.read" in events

    def test_constraint_instantiated_per_place(self, sdf_setup):
        model, app, registry = sdf_setup
        result = weave(parse_ecl(MINI_MAPPING), model, registry)
        constraints = result.execution_model.constraints
        assert len(constraints) == 1
        constraint = constraints[0]
        assert constraint.label == "PlaceLimitation@Place:buf"
        assert constraint.constrained_events == frozenset(
            {"buf.out.write", "buf.in.read"})

    def test_integer_arguments_navigated(self, sdf_setup):
        model, app, registry = sdf_setup
        result = weave(parse_ecl(MINI_MAPPING), model, registry)
        constraint = result.execution_model.constraints[0]
        # capacity was 2, delay 0
        assert constraint._params["itsCapacity"] == 2
        assert constraint._params["itsDelay"] == 0

    def test_event_of_helper(self, sdf_setup):
        model, app, registry = sdf_setup
        result = weave(parse_ecl(MINI_MAPPING), model, registry)
        prod = model.find("Agent", "prod")
        assert result.event_of(prod, "start") == "prod.start"
        with pytest.raises(MappingError):
            result.event_of(prod, "unknown")

    def test_unknown_context_metaclass(self, sdf_setup):
        model, _app, registry = sdf_setup
        document = parse_ecl("context Nonexistent\n  def: e : Event\n")
        with pytest.raises(MappingError):
            weave(document, model, registry)

    def test_event_argument_must_resolve(self, sdf_setup):
        model, _app, registry = sdf_setup
        text = MINI_MAPPING.replace("self.outputPort.write",
                                    "self.outputPort.ghost")
        with pytest.raises(MappingError):
            weave(parse_ecl(text), model, registry)

    def test_int_argument_must_be_int(self, sdf_setup):
        model, _app, registry = sdf_setup
        text = MINI_MAPPING.replace("self.capacity", "self.name")
        with pytest.raises(MappingError):
            weave(parse_ecl(text), model, registry)

    def test_expression_argument_weaves(self, sdf_setup):
        model, _app, registry = sdf_setup
        text = MINI_MAPPING.replace("self.delay,", "self.delay + 0,")
        result = weave(parse_ecl(text), model, registry)
        assert len(result.execution_model.constraints) == 1
