"""Tests for model containers, conformance checking and serialization."""

import pytest

from repro.errors import ConformanceError, SerializationError
from repro.kernel import (
    Model,
    MetamodelBuilder,
    check_conformance,
    metamodel_from_json,
    metamodel_to_json,
    model_from_json,
    model_to_json,
)
from repro.kernel.validation import assert_conformance
from tests.kernel.test_metamodel import build_library_metamodel


@pytest.fixture()
def mm():
    return build_library_metamodel()


def make_model(mm):
    model = Model(mm, "lib")
    shelf = model.create("Shelf", name="cs")
    book = mm.instantiate("Book", name="SICP", pages=657)
    shelf.add("books", book)
    return model, shelf, book


class TestModel:
    def test_iteration_covers_contents(self, mm):
        model, shelf, book = make_model(mm)
        assert set(element.label() for element in model) == {
            "Shelf:cs", "Book:SICP"}

    def test_all_instances_with_subtypes(self, mm):
        model, _shelf, _book = make_model(mm)
        named = model.all_instances("NamedElement")
        assert len(named) == 2
        assert len(model.all_instances("Book")) == 1
        assert model.all_instances("Book", include_subtypes=False)

    def test_find_by_name(self, mm):
        model, _shelf, book = make_model(mm)
        assert model.find("Book", "SICP") is book
        assert model.find("Book", "missing") is None

    def test_foreign_metamodel_rejected(self, mm):
        other = MetamodelBuilder("Other")
        other.metaclass("Thing")
        other_mm = other.build()
        model = Model(mm)
        with pytest.raises(ConformanceError):
            model.add_root(other_mm.instantiate("Thing"))


class TestConformance:
    def test_valid_model_has_no_issues(self, mm):
        model, _, _ = make_model(mm)
        assert check_conformance(model) == []
        assert_conformance(model)

    def test_required_attribute_reported(self, mm):
        model = Model(mm)
        model.create("Book", pages=3)  # name unset
        issues = check_conformance(model)
        assert any("name" in issue for issue in issues)

    def test_reference_outside_model_reported(self, mm):
        model = Model(mm)
        reader = model.create("Reader", name="ada")
        stray = mm.instantiate("Book", name="stray")
        reader.add("borrowed", stray)  # stray not added to the model
        issues = check_conformance(model)
        assert any("outside the model" in issue for issue in issues)

    def test_assert_raises(self, mm):
        model = Model(mm)
        model.create("Book")
        with pytest.raises(ConformanceError):
            assert_conformance(model)


class TestSerialization:
    def test_metamodel_roundtrip(self, mm):
        text = metamodel_to_json(mm)
        back = metamodel_from_json(text)
        assert set(c.name for c in back) == set(c.name for c in mm)
        book = back.metaclass("Book")
        assert book.all_attributes()["pages"].default == 0
        assert back.metaclass("Shelf").references["books"].containment

    def test_model_roundtrip(self, mm):
        model, _shelf, _book = make_model(mm)
        text = model_to_json(model)
        back = model_from_json(text, mm)
        assert set(e.label() for e in back) == set(e.label() for e in model)
        shelf = back.find("Shelf", "cs")
        books = shelf.get("books")
        assert [b.name for b in books] == ["SICP"]
        assert books[0].container is shelf

    def test_model_roundtrip_preserves_cross_refs(self, mm):
        model, shelf, book = make_model(mm)
        reader = model.create("Reader", name="ada")
        reader.add("borrowed", book)
        back = model_from_json(model_to_json(model), mm)
        reader_back = back.find("Reader", "ada")
        assert [b.name for b in reader_back.get("borrowed")] == ["SICP"]
        # cross-reference resolves to the same instance as the contained one
        shelf_back = back.find("Shelf", "cs")
        assert reader_back.get("borrowed")[0] is shelf_back.get("books")[0]

    def test_wrong_metamodel_rejected(self, mm):
        model, _, _ = make_model(mm)
        text = model_to_json(model)
        other = MetamodelBuilder("Other")
        other.metaclass("Thing")
        with pytest.raises(SerializationError):
            model_from_json(text, other.build())

    def test_reference_leak_rejected(self, mm):
        model = Model(mm)
        reader = model.create("Reader", name="ada")
        stray = mm.instantiate("Book", name="stray")
        reader.add("borrowed", stray)
        with pytest.raises(SerializationError):
            model_to_json(model)

    def test_bad_json_rejected(self, mm):
        with pytest.raises(SerializationError):
            model_from_json("{not json", mm)
        with pytest.raises(SerializationError):
            metamodel_from_json('{"kind": "model", "format": 1}')
