"""Tests for dotted-path navigation (the OCL fragment used by ECL)."""

import pytest

from repro.errors import NavigationError
from repro.kernel import Model, MetamodelBuilder, navigate


@pytest.fixture()
def sdf_like():
    """A small SigPML-shaped metamodel: agents with ports, places between."""
    b = MetamodelBuilder("Mini")
    b.metaclass("Named", attributes={"name": "str"}, abstract=True)
    b.metaclass("Port", supertypes=["Named"], attributes={"rate": ("int", 1)})
    b.metaclass("Agent", supertypes=["Named"],
                references={"outputs": ("Port", "many", "containment"),
                            "inputs": ("Port", "many", "containment")})
    b.metaclass("Place", supertypes=["Named"],
                attributes={"capacity": ("int", 1), "delay": ("int", 0)},
                references={"outputPort": ("Port", "required"),
                            "inputPort": ("Port", "required")})
    b.metaclass("App", supertypes=["Named"],
                references={"agents": ("Agent", "many", "containment"),
                            "places": ("Place", "many", "containment")})
    mm = b.build()

    model = Model(mm, "m")
    app = model.create("App", name="app")
    producer = mm.instantiate("Agent", name="prod")
    consumer = mm.instantiate("Agent", name="cons")
    out_port = mm.instantiate("Port", name="o", rate=2)
    in_port = mm.instantiate("Port", name="i", rate=3)
    producer.add("outputs", out_port)
    consumer.add("inputs", in_port)
    place = mm.instantiate("Place", name="p", capacity=5)
    place.set("outputPort", out_port)
    place.set("inputPort", in_port)
    app.add("agents", producer)
    app.add("agents", consumer)
    app.add("places", place)
    return model, app, place


class TestNavigate:
    def test_attribute(self, sdf_like):
        _model, _app, place = sdf_like
        assert navigate(place, "capacity") == 5

    def test_self_prefix_ignored(self, sdf_like):
        _model, _app, place = sdf_like
        assert navigate(place, "self.capacity") == 5

    def test_reference_then_attribute(self, sdf_like):
        _model, _app, place = sdf_like
        assert navigate(place, "self.outputPort.rate") == 2
        assert navigate(place, "self.inputPort.rate") == 3

    def test_many_reference_flattens(self, sdf_like):
        _model, app, _place = sdf_like
        names = navigate(app, "agents.name")
        assert names == ["prod", "cons"]

    def test_nested_flatten(self, sdf_like):
        _model, app, _place = sdf_like
        rates = navigate(app, "agents.outputs.rate")
        assert rates == [2]

    def test_empty_path_returns_element(self, sdf_like):
        _model, _app, place = sdf_like
        assert navigate(place, "self") is place
        assert navigate(place, "") is place

    def test_unknown_feature(self, sdf_like):
        _model, _app, place = sdf_like
        with pytest.raises(NavigationError):
            navigate(place, "self.volume")

    def test_navigation_into_scalar_fails(self, sdf_like):
        _model, _app, place = sdf_like
        with pytest.raises(NavigationError):
            navigate(place, "capacity.more")
