"""Unit tests for the metamodeling kernel: metaclasses and features."""

import pytest

from repro.errors import MetamodelError
from repro.kernel import (
    MetaAttribute,
    MetaClass,
    MetaModel,
    MetaReference,
    MetamodelBuilder,
)


def build_library_metamodel():
    b = MetamodelBuilder("Library")
    b.metaclass("NamedElement", attributes={"name": "str"}, abstract=True)
    b.metaclass("Book", supertypes=["NamedElement"],
                attributes={"pages": ("int", 0), "tags": ("str", "many")})
    b.metaclass("Shelf", supertypes=["NamedElement"],
                references={"books": ("Book", "many", "containment")})
    b.metaclass("Reader", supertypes=["NamedElement"],
                references={"borrowed": ("Book", "many")})
    return b.build()


class TestMetaAttribute:
    def test_valid_types(self):
        for type_name in ("int", "str", "bool", "float"):
            attr = MetaAttribute("x", type_name)
            assert attr.type_name == type_name

    def test_unknown_type_rejected(self):
        with pytest.raises(MetamodelError):
            MetaAttribute("x", "complex")

    def test_bad_identifier_rejected(self):
        with pytest.raises(MetamodelError):
            MetaAttribute("2fast", "int")

    def test_default_type_checked(self):
        with pytest.raises(MetamodelError):
            MetaAttribute("x", "int", default="nope")

    def test_bool_is_not_int(self):
        attr = MetaAttribute("x", "int")
        assert not attr.accepts(True)
        assert attr.accepts(3)

    def test_int_widens_to_float(self):
        attr = MetaAttribute("x", "float")
        assert attr.accepts(3)
        assert attr.accepts(3.5)
        assert not attr.accepts(True)


class TestMetaClass:
    def test_duplicate_feature_rejected(self):
        cls = MetaClass("C", attributes=[MetaAttribute("x", "int")])
        with pytest.raises(MetamodelError):
            cls.add_attribute(MetaAttribute("x", "str"))
        with pytest.raises(MetamodelError):
            cls.add_reference(MetaReference("x", "C"))

    def test_inherited_features_merged(self):
        mm = build_library_metamodel()
        book = mm.metaclass("Book")
        assert set(book.all_attributes()) == {"name", "pages", "tags"}

    def test_conforms_to_transitively(self):
        mm = build_library_metamodel()
        assert mm.metaclass("Book").conforms_to("NamedElement")
        assert mm.metaclass("Book").conforms_to("Book")
        assert not mm.metaclass("Book").conforms_to("Shelf")

    def test_feature_lookup_includes_inherited(self):
        mm = build_library_metamodel()
        book = mm.metaclass("Book")
        assert book.feature("name") is not None
        assert book.feature("pages") is not None
        assert book.feature("missing") is None


class TestMetaModel:
    def test_duplicate_metaclass_rejected(self):
        mm = MetaModel("M")
        mm.add(MetaClass("C"))
        with pytest.raises(MetamodelError):
            mm.add(MetaClass("C"))

    def test_unknown_metaclass_lookup(self):
        mm = MetaModel("M")
        with pytest.raises(MetamodelError):
            mm.metaclass("Nope")

    def test_resolve_detects_unknown_supertype(self):
        mm = MetaModel("M")
        mm.add(MetaClass("C", supertypes=["Missing"]))
        with pytest.raises(MetamodelError):
            mm.resolve()

    def test_resolve_detects_unknown_reference_target(self):
        mm = MetaModel("M")
        mm.add(MetaClass("C", references=[MetaReference("r", "Missing")]))
        with pytest.raises(MetamodelError):
            mm.resolve()

    def test_resolve_detects_inheritance_cycle(self):
        mm = MetaModel("M")
        mm.add(MetaClass("A", supertypes=["B"]))
        mm.add(MetaClass("B", supertypes=["A"]))
        with pytest.raises(MetamodelError):
            mm.resolve()

    def test_cannot_instantiate_abstract(self):
        mm = build_library_metamodel()
        with pytest.raises(MetamodelError):
            mm.instantiate("NamedElement")

    def test_instantiate_with_values(self):
        mm = build_library_metamodel()
        book = mm.instantiate("Book", name="SICP", pages=657)
        assert book.get("name") == "SICP"
        assert book.get("pages") == 657


class TestBuilderShorthand:
    def test_attribute_default_shorthand(self):
        b = MetamodelBuilder("M")
        b.metaclass("C", attributes={"n": ("int", 7)})
        mm = b.build()
        obj = mm.instantiate("C")
        assert obj.get("n") == 7

    def test_reference_flags(self):
        b = MetamodelBuilder("M")
        b.metaclass("Child")
        b.metaclass("Parent",
                    references={"kids": ("Child", "many", "containment"),
                                "favorite": ("Child", "required")})
        mm = b.build()
        parent = mm.metaclass("Parent")
        assert parent.references["kids"].containment
        assert parent.references["kids"].many
        assert not parent.references["favorite"].optional

    def test_bad_shorthand_rejected(self):
        b = MetamodelBuilder("M")
        with pytest.raises(MetamodelError):
            b.metaclass("C", attributes={"x": ("int", object())})
        with pytest.raises(MetamodelError):
            b.metaclass("D", references={"r": ("T", "wat")})
