"""Unit tests for model elements: slot typing, containment, traversal."""

import pytest

from repro.errors import ConformanceError
from tests.kernel.test_metamodel import build_library_metamodel


@pytest.fixture()
def mm():
    return build_library_metamodel()


class TestSlots:
    def test_unknown_feature(self, mm):
        book = mm.instantiate("Book")
        with pytest.raises(ConformanceError):
            book.get("missing")
        with pytest.raises(ConformanceError):
            book.set("missing", 1)

    def test_attribute_type_checked(self, mm):
        book = mm.instantiate("Book")
        with pytest.raises(ConformanceError):
            book.set("pages", "many")
        with pytest.raises(ConformanceError):
            book.set("pages", True)

    def test_many_attribute(self, mm):
        book = mm.instantiate("Book")
        book.add("tags", "classic")
        book.add("tags", "lisp")
        assert book.get("tags") == ["classic", "lisp"]
        book.set("tags", ["fresh"])
        assert book.get("tags") == ["fresh"]

    def test_many_requires_list_on_set(self, mm):
        book = mm.instantiate("Book")
        with pytest.raises(ConformanceError):
            book.set("tags", "oops")

    def test_add_on_single_valued_rejected(self, mm):
        book = mm.instantiate("Book")
        with pytest.raises(ConformanceError):
            book.add("pages", 2)

    def test_reference_target_type_checked(self, mm):
        shelf = mm.instantiate("Shelf")
        reader = mm.instantiate("Reader")
        with pytest.raises(ConformanceError):
            shelf.add("books", reader)
        with pytest.raises(ConformanceError):
            shelf.add("books", 42)

    def test_is_set(self, mm):
        book = mm.instantiate("Book")
        assert not book.is_set("name")
        book.set("name", "SICP")
        assert book.is_set("name")
        assert not book.is_set("tags")
        book.add("tags", "t")
        assert book.is_set("tags")

    def test_default_applied(self, mm):
        book = mm.instantiate("Book")
        assert book.get("pages") == 0


class TestContainment:
    def test_container_set_on_add(self, mm):
        shelf = mm.instantiate("Shelf")
        book = mm.instantiate("Book", name="SICP")
        shelf.add("books", book)
        assert book.container is shelf

    def test_single_container_enforced(self, mm):
        shelf_a = mm.instantiate("Shelf")
        shelf_b = mm.instantiate("Shelf")
        book = mm.instantiate("Book")
        shelf_a.add("books", book)
        with pytest.raises(ConformanceError):
            shelf_b.add("books", book)

    def test_set_releases_previous_contents(self, mm):
        shelf = mm.instantiate("Shelf")
        book = mm.instantiate("Book")
        shelf.add("books", book)
        shelf.set("books", [])
        assert book.container is None

    def test_cross_reference_does_not_contain(self, mm):
        reader = mm.instantiate("Reader")
        book = mm.instantiate("Book")
        reader.add("borrowed", book)
        assert book.container is None

    def test_all_contents(self, mm):
        shelf = mm.instantiate("Shelf", name="s")
        names = []
        for title in ("a", "b", "c"):
            book = mm.instantiate("Book", name=title)
            shelf.add("books", book)
            names.append(title)
        assert [child.name for child in shelf.all_contents()] == names


class TestIdentity:
    def test_label_with_name(self, mm):
        book = mm.instantiate("Book", name="SICP")
        assert book.label() == "Book:SICP"

    def test_label_without_name(self, mm):
        book = mm.instantiate("Book")
        assert book.label().startswith("Book#")

    def test_uids_unique(self, mm):
        a = mm.instantiate("Book")
        b = mm.instantiate("Book")
        assert a.uid != b.uid
