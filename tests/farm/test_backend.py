"""Backends and the store-through batch runner."""

import json

import pytest

from repro.engine.execution_model import ExecutionModel
from repro.farm import ArtifactStore, BackendError
from repro.farm.backend import GroupTask, _split_for_shipping, \
    _worker_run_group, execute_groups
from repro.workbench import (
    CcslSpec,
    CheckSpec,
    ExploreSpec,
    SimulateSpec,
    Workbench,
    load,
)

APPLICATION = """
application bdemo {
  agent src
  agent mid
  agent dst
  place src -> mid push 1 pop 1 capacity 2
  place mid -> dst push 1 pop 1 capacity 2
}
"""


def make_workbench(store=None):
    wb = Workbench(store=store)
    wb.add(APPLICATION, name="bdemo")
    wb.add(CcslSpec("clocks", events=["a", "b"],
                    constraints=[("Alternates", ["a", "b"])]),
           name="clocks")
    return wb


def batch():
    return [SimulateSpec("bdemo", steps=10),
            ExploreSpec("bdemo", max_states=300),
            CheckSpec("bdemo", "AG !deadlock", max_states=300),
            SimulateSpec("clocks", steps=8),
            SimulateSpec("bdemo", policy={"name": "random", "seed": 5},
                         steps=10)]


class TestWorkerRoundTrip:
    def test_worker_rebuilds_and_matches_parent(self):
        wb = make_workbench()
        parent = [r.to_json() for r in wb.run_many(batch(),
                                                   backend="serial")]
        handle = wb.handle("bdemo")
        indices = [i for i, s in enumerate(batch())
                   if s.model == "bdemo"]
        specs = [s for s in batch() if s.model == "bdemo"]
        shippable, local = _split_for_shipping(
            [GroupTask(handle=handle, indices=indices, specs=specs)])
        assert local == []
        [(_group, payload)] = shippable
        returned = dict(_worker_run_group(payload))
        for index in indices:
            assert returned[index] == parent[index]

    def test_payload_is_plain_json(self):
        wb = make_workbench()
        handle = wb.handle("clocks")
        shippable, _local = _split_for_shipping(
            [GroupTask(handle=handle, indices=[0],
                       specs=[SimulateSpec("clocks")])])
        document = json.loads(shippable[0][1])
        assert document["source"]["frontend"] == "ccsl"
        assert document["runs"][0]["spec"]["kind"] == "simulate"


class TestExecuteGroups:
    def test_unknown_backend_rejected(self):
        with pytest.raises(BackendError, match="unknown backend"):
            execute_groups([], backend="quantum", workers=2,
                           deliver=lambda i, r: None)

    def test_unshippable_group_falls_back_in_process_backend(self):
        # a bare ExecutionModel handle has no source_doc; the process
        # backend must still produce its results (in the parent)
        model = ExecutionModel(["x"], [], name="bare")
        wb = Workbench()
        wb.add(load(model), name="bare")
        wb.add(APPLICATION, name="bdemo")
        assert wb.handle("bare").source_doc is None
        specs = [SimulateSpec("bare", steps=3),
                 SimulateSpec("bdemo", steps=3)]
        serial = [r.to_json() for r in wb.run_many(specs,
                                                   backend="serial")]
        process = [r.to_json() for r in wb.run_many(specs, workers=4,
                                                    backend="process")]
        assert process == serial

    def test_error_results_survive_the_process_boundary(self):
        wb = make_workbench()
        specs = [SimulateSpec("bdemo", policy={"name": "nope"}, steps=2),
                 SimulateSpec("bdemo", steps=2)]
        results = wb.run_many(specs, workers=4, backend="process")
        assert results[0].status == "error"
        assert "nope" in results[0].error
        assert results[1].ok

    def test_unserializable_spec_in_shippable_group_stays_per_spec(self):
        # a bare policy instance cannot cross the process boundary; it
        # must yield its usual per-spec error result (computed in the
        # parent), not abort the whole batch from the payload builder
        from repro.engine import AsapPolicy
        wb = make_workbench()
        specs = [SimulateSpec("bdemo", policy=AsapPolicy(), steps=2),
                 SimulateSpec("bdemo", steps=2),
                 SimulateSpec("clocks", steps=2)]
        serial = wb.run_many(specs, backend="serial")
        process = wb.run_many(specs, workers=4, backend="process")
        assert process[0].status == "error"
        assert "serializable" in process[0].error
        assert [r.to_json() for r in process] \
            == [r.to_json() for r in serial]


class TestStoreThroughBatch:
    def test_cold_then_warm_byte_identical(self, tmp_path):
        store = ArtifactStore(tmp_path / "farm")
        cold = [r.to_json() for r in
                make_workbench(store).run_many(batch())]
        warm_results = make_workbench(store).run_many(batch())
        assert [r.to_json() for r in warm_results] == cold
        assert all(r.cached for r in warm_results)

    def test_error_results_are_not_cached(self, tmp_path):
        store = ArtifactStore(tmp_path / "farm")
        wb = make_workbench(store)
        specs = [SimulateSpec("bdemo", policy={"name": "nope"}, steps=2)]
        wb.run_many(specs)
        again = wb.run_many(specs)
        assert again[0].status == "error"
        assert not again[0].cached
        assert store.stats()["entries"] == 0

    def test_corrupted_entry_recomputes_and_heals(self, tmp_path):
        store = ArtifactStore(tmp_path / "farm")
        make_workbench(store).run_many(batch())
        entries = list(store.objects.glob("??/*.json"))
        for path in entries:
            path.write_bytes(b"corrupted beyond recognition")
        results = make_workbench(store).run_many(batch())
        assert all(r.ok for r in results)
        assert not any(r.cached for r in results)
        # the recomputation healed every slot
        warm = make_workbench(store).run_many(batch())
        assert all(r.cached for r in warm)

    def test_unfingerprintable_specs_run_uncached(self, tmp_path):
        from repro.engine import AsapPolicy
        store = ArtifactStore(tmp_path / "farm")
        wb = make_workbench(store)
        specs = [SimulateSpec("bdemo", policy=AsapPolicy(), steps=2),
                 SimulateSpec("bdemo", steps=2)]
        first = wb.run_many(specs)
        assert first[0].status == "error"  # instances are not serializable
        assert first[1].ok and not first[1].cached
        second = wb.run_many(specs)
        assert second[1].cached

    def test_store_param_overrides_session(self, tmp_path):
        wb = make_workbench()
        other = ArtifactStore(tmp_path / "other")
        wb.run_many(batch(), store=other)
        assert other.stats()["entries"] == len(batch())
        warm = wb.run_many(batch(), store=other)
        assert all(r.cached for r in warm)
        # and no store at all for the session default
        cold = wb.run_many(batch())
        assert not any(r.cached for r in cold)

    def test_digest_consistent_non_result_document_is_a_miss(self,
                                                             tmp_path):
        # an envelope can be store-valid (digest matches) yet hold a
        # document RunResult cannot rebuild — that must recompute, not
        # raise out of run_many
        store = ArtifactStore(tmp_path / "farm")
        wb = make_workbench(store)
        specs = [SimulateSpec("bdemo", steps=4)]
        wb.run_many(specs)
        [path] = list(store.objects.glob("??/*.json"))
        fingerprint = path.stem
        store.put(fingerprint, {"format": 1, "kind": "simulate",
                                "model": "bdemo", "spec": [1, 2]})
        results = make_workbench(store).run_many(specs)
        assert results[0].ok
        assert not results[0].cached

    def test_failing_store_write_never_costs_a_result(self, tmp_path,
                                                      monkeypatch):
        from repro.farm.store import StoreError
        store = ArtifactStore(tmp_path / "farm")

        def broken_put(fingerprint, doc):
            raise StoreError("disk full")

        monkeypatch.setattr(store, "put", broken_put)
        results = make_workbench(store).run_many(batch())
        assert all(r.ok for r in results)  # computed despite the store
        assert store.stats()["entries"] == 0

    def test_single_run_uses_the_session_store(self, tmp_path):
        wb = make_workbench(store=tmp_path / "farm")
        first = wb.run(SimulateSpec("bdemo", steps=6))
        second = wb.run(SimulateSpec("bdemo", steps=6))
        assert not first.cached
        assert second.cached
        assert second.to_json() == first.to_json()

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_warm_store_serves_every_backend(self, tmp_path, backend):
        store = ArtifactStore(tmp_path / "farm")
        cold = [r.to_json() for r in
                make_workbench(store).run_many(batch())]
        warm = make_workbench(store).run_many(batch(), workers=4,
                                              backend=backend)
        assert [r.to_json() for r in warm] == cold
        assert all(r.cached for r in warm)
