"""Store robustness: corruption tolerance, concurrency, LRU gc."""

import json
import os
import threading
import time

import pytest

from repro.farm import ArtifactStore
from repro.farm.store import StoreError

FP = "ab" + "0" * 62
OTHER = "cd" + "1" * 62


def doc(n=0):
    return {"kind": "simulate", "model": "m", "status": "ok",
            "data": {"steps_run": n}, "spec": {}, "format": 1}


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "farm")


class TestRoundTrip:
    def test_put_get(self, store):
        store.put(FP, doc(3))
        assert store.get(FP) == doc(3)
        assert store.counters["hits"] == 1

    def test_missing_is_a_miss(self, store):
        assert store.get(FP) is None
        assert store.counters["misses"] == 1

    def test_rewrite_wins(self, store):
        store.put(FP, doc(1))
        store.put(FP, doc(2))
        assert store.get(FP) == doc(2)

    def test_stats_shape(self, store):
        store.put(FP, doc())
        report = store.stats()
        assert report["entries"] == 1
        assert report["total_bytes"] > 0
        assert report["session"]["writes"] == 1

    def test_malformed_fingerprint_rejected(self, store):
        with pytest.raises(StoreError):
            store.put("x", doc())


class TestCorruptionTolerance:
    def entry_path(self, store):
        return store.objects / FP[:2] / f"{FP}.json"

    def test_garbage_bytes_fall_back_to_miss(self, store):
        store.put(FP, doc())
        self.entry_path(store).write_bytes(b"\x00\xffnot json")
        assert store.get(FP) is None
        assert store.counters["corrupt"] == 1
        # the corrupt entry was healed away
        assert not self.entry_path(store).exists()

    def test_truncated_entry_falls_back_to_miss(self, store):
        store.put(FP, doc())
        path = self.entry_path(store)
        path.write_bytes(path.read_bytes()[:20])
        assert store.get(FP) is None

    def test_payload_tamper_detected(self, store):
        store.put(FP, doc(1))
        path = self.entry_path(store)
        envelope = json.loads(path.read_text())
        envelope["result"]["data"]["steps_run"] = 999  # digest mismatch
        path.write_text(json.dumps(envelope))
        assert store.get(FP) is None
        assert store.counters["corrupt"] == 1

    def test_wrong_fingerprint_envelope_rejected(self, store):
        store.put(OTHER, doc())
        wrong = store.objects / FP[:2] / f"{FP}.json"
        wrong.parent.mkdir(parents=True, exist_ok=True)
        source = store.objects / OTHER[:2] / f"{OTHER}.json"
        wrong.write_bytes(source.read_bytes())
        assert store.get(FP) is None

    def test_recompute_after_corruption_heals(self, store):
        store.put(FP, doc(1))
        self.entry_path(store).write_bytes(b"garbage")
        assert store.get(FP) is None
        store.put(FP, doc(1))
        assert store.get(FP) == doc(1)


class TestConcurrency:
    def test_parallel_writers_leave_a_valid_entry(self, tmp_path):
        store = ArtifactStore(tmp_path / "farm")
        errors = []

        def writer(wid):
            try:
                for _ in range(25):
                    # same fingerprint, identical bytes — the real racing
                    # pattern (content-addressed writers agree)
                    store.put(FP, doc(7))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append((wid, exc))

        threads = [threading.Thread(target=writer, args=(i,))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert store.get(FP) == doc(7)
        # no temporary litter left behind
        leftovers = [p for p in store.objects.rglob(".tmp-*")]
        assert leftovers == []

    def test_reader_during_writes_never_sees_half_files(self, tmp_path):
        store = ArtifactStore(tmp_path / "farm")
        stop = threading.Event()
        bad = []

        def reader():
            while not stop.is_set():
                got = store.get(FP)
                if got is not None and got != doc(7):
                    bad.append(got)

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            for _ in range(200):
                store.put(FP, doc(7))
        finally:
            stop.set()
            thread.join()
        assert bad == []
        # atomic publishes mean a reader never manufactures corruption
        assert store.counters["corrupt"] == 0


class TestGc:
    def fill(self, store, count):
        fingerprints = []
        for index in range(count):
            fp = f"{index:02x}" + f"{index:062x}"
            store.put(fp, doc(index))
            # strictly increasing mtimes make LRU order deterministic
            path = store.objects / fp[:2] / f"{fp}.json"
            os.utime(path, (1_000_000 + index, 1_000_000 + index))
            fingerprints.append(fp)
        return fingerprints

    def test_max_entries_drops_oldest_first(self, store):
        fingerprints = self.fill(store, 6)
        report = store.gc(max_entries=2)
        assert report["removed"] == 4
        assert report["kept"] == 2
        for fp in fingerprints[:4]:
            assert store.get(fp) is None
        for fp in fingerprints[4:]:
            assert store.get(fp) is not None

    def test_max_bytes_enforced(self, store):
        self.fill(store, 6)
        entry_bytes = store.stats()["total_bytes"] // 6
        report = store.gc(max_bytes=entry_bytes * 3)
        assert report["total_bytes"] <= entry_bytes * 3
        assert store.stats()["entries"] == report["kept"]

    def test_get_refreshes_lru_rank(self, store):
        fingerprints = self.fill(store, 4)
        time.sleep(0.01)
        assert store.get(fingerprints[0]) is not None  # touch the oldest
        store.gc(max_entries=1)
        # the touched entry is now the most recent and survives
        assert store.get(fingerprints[0]) is not None

    def test_gc_without_limits_is_a_noop(self, store):
        self.fill(store, 3)
        report = store.gc()
        assert report["removed"] == 0
        assert store.stats()["entries"] == 3

    def test_clear_empties_the_store(self, store):
        self.fill(store, 3)
        assert store.clear() == 3
        assert store.stats()["entries"] == 0
