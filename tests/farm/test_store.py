"""Store robustness: corruption tolerance, concurrency, LRU gc."""

import json
import os
import threading
import time

import pytest

from repro.farm import ArtifactStore
from repro.farm.store import StoreError

FP = "ab" + "0" * 62
OTHER = "cd" + "1" * 62


def doc(n=0):
    return {"kind": "simulate", "model": "m", "status": "ok",
            "data": {"steps_run": n}, "spec": {}, "format": 1}


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "farm")


class TestRoundTrip:
    def test_put_get(self, store):
        store.put(FP, doc(3))
        assert store.get(FP) == doc(3)
        assert store.counters["hits"] == 1

    def test_missing_is_a_miss(self, store):
        assert store.get(FP) is None
        assert store.counters["misses"] == 1

    def test_rewrite_wins(self, store):
        store.put(FP, doc(1))
        store.put(FP, doc(2))
        assert store.get(FP) == doc(2)

    def test_stats_shape(self, store):
        store.put(FP, doc())
        report = store.stats()
        assert report["entries"] == 1
        assert report["total_bytes"] > 0
        assert report["session"]["writes"] == 1

    def test_malformed_fingerprint_rejected(self, store):
        with pytest.raises(StoreError):
            store.put("x", doc())


class TestCorruptionTolerance:
    def entry_path(self, store):
        return store.objects / FP[:2] / f"{FP}.json"

    def test_garbage_bytes_fall_back_to_miss(self, store):
        store.put(FP, doc())
        self.entry_path(store).write_bytes(b"\x00\xffnot json")
        assert store.get(FP) is None
        assert store.counters["corrupt"] == 1
        # the corrupt entry was healed away
        assert not self.entry_path(store).exists()

    def test_truncated_entry_falls_back_to_miss(self, store):
        store.put(FP, doc())
        path = self.entry_path(store)
        path.write_bytes(path.read_bytes()[:20])
        assert store.get(FP) is None

    def test_payload_tamper_detected(self, store):
        store.put(FP, doc(1))
        path = self.entry_path(store)
        envelope = json.loads(path.read_text())
        envelope["result"]["data"]["steps_run"] = 999  # digest mismatch
        path.write_text(json.dumps(envelope))
        assert store.get(FP) is None
        assert store.counters["corrupt"] == 1

    def test_wrong_fingerprint_envelope_rejected(self, store):
        store.put(OTHER, doc())
        wrong = store.objects / FP[:2] / f"{FP}.json"
        wrong.parent.mkdir(parents=True, exist_ok=True)
        source = store.objects / OTHER[:2] / f"{OTHER}.json"
        wrong.write_bytes(source.read_bytes())
        assert store.get(FP) is None

    def test_recompute_after_corruption_heals(self, store):
        store.put(FP, doc(1))
        self.entry_path(store).write_bytes(b"garbage")
        assert store.get(FP) is None
        store.put(FP, doc(1))
        assert store.get(FP) == doc(1)


class TestConcurrency:
    def test_parallel_writers_leave_a_valid_entry(self, tmp_path):
        store = ArtifactStore(tmp_path / "farm")
        errors = []

        def writer(wid):
            try:
                for _ in range(25):
                    # same fingerprint, identical bytes — the real racing
                    # pattern (content-addressed writers agree)
                    store.put(FP, doc(7))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append((wid, exc))

        threads = [threading.Thread(target=writer, args=(i,))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert store.get(FP) == doc(7)
        # no temporary litter left behind
        leftovers = [p for p in store.objects.rglob(".tmp-*")]
        assert leftovers == []

    def test_reader_during_writes_never_sees_half_files(self, tmp_path):
        store = ArtifactStore(tmp_path / "farm")
        stop = threading.Event()
        bad = []

        def reader():
            while not stop.is_set():
                got = store.get(FP)
                if got is not None and got != doc(7):
                    bad.append(got)

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            for _ in range(200):
                store.put(FP, doc(7))
        finally:
            stop.set()
            thread.join()
        assert bad == []
        # atomic publishes mean a reader never manufactures corruption
        assert store.counters["corrupt"] == 0


class TestGc:
    def fill(self, store, count):
        fingerprints = []
        for index in range(count):
            fp = f"{index:02x}" + f"{index:062x}"
            store.put(fp, doc(index))
            # strictly increasing mtimes make LRU order deterministic
            path = store.objects / fp[:2] / f"{fp}.json"
            os.utime(path, (1_000_000 + index, 1_000_000 + index))
            fingerprints.append(fp)
        return fingerprints

    def test_max_entries_drops_oldest_first(self, store):
        fingerprints = self.fill(store, 6)
        report = store.gc(max_entries=2)
        assert report["removed"] == 4
        assert report["kept"] == 2
        for fp in fingerprints[:4]:
            assert store.get(fp) is None
        for fp in fingerprints[4:]:
            assert store.get(fp) is not None

    def test_max_bytes_enforced(self, store):
        self.fill(store, 6)
        entry_bytes = store.stats()["total_bytes"] // 6
        report = store.gc(max_bytes=entry_bytes * 3)
        assert report["total_bytes"] <= entry_bytes * 3
        assert store.stats()["entries"] == report["kept"]

    def test_get_refreshes_lru_rank(self, store):
        fingerprints = self.fill(store, 4)
        time.sleep(0.01)
        assert store.get(fingerprints[0]) is not None  # touch the oldest
        store.gc(max_entries=1)
        # the touched entry is now the most recent and survives
        assert store.get(fingerprints[0]) is not None

    def test_gc_without_limits_is_a_noop(self, store):
        self.fill(store, 3)
        report = store.gc()
        assert report["removed"] == 0
        assert store.stats()["entries"] == 3

    def test_clear_empties_the_store(self, store):
        self.fill(store, 3)
        assert store.clear() == 3
        assert store.stats()["entries"] == 0


class TestGcWhileServing:
    """gc racing concurrent reads/writes — the serving-mode contract:
    a reader never sees a torn entry, only a miss it can self-heal
    from, and an entry read between gc's listing and its unlink is
    spared (its refreshed mtime proves it is not LRU anymore)."""

    def fill(self, store, count):
        fingerprints = []
        for index in range(count):
            fp = f"{index:02x}" + f"{index:062x}"
            store.put(fp, doc(index))
            path = store.objects / fp[:2] / f"{fp}.json"
            os.utime(path, (1_000_000 + index, 1_000_000 + index))
            fingerprints.append(fp)
        return fingerprints

    def test_gc_spares_entries_read_since_listing(self, store,
                                                  monkeypatch):
        fingerprints = self.fill(store, 3)
        stale = store._entries()
        oldest_path = stale[0][2]
        # freeze gc's view of the world at the stale listing, then
        # simulate a reader hitting the oldest entry in between (a hit
        # refreshes the mtime — see ArtifactStore.get)
        monkeypatch.setattr(store, "_entries", lambda: stale)
        now = time.time()
        os.utime(oldest_path, (now, now))
        report = store.gc(max_entries=1)
        assert report["spared"] == 1
        assert oldest_path.exists()  # the freshly-read entry survived
        assert store.get(fingerprints[0]) is not None
        # the untouched middle candidate was removed normally
        assert report["removed"] == 1
        assert store.get(fingerprints[1]) is None

    def test_gc_tolerates_candidates_already_unlinked(self, store,
                                                      monkeypatch):
        self.fill(store, 3)
        stale = store._entries()
        monkeypatch.setattr(store, "_entries", lambda: stale)
        stale[0][2].unlink()  # a concurrent gc (or clear) won the race
        report = store.gc(max_entries=1)
        # only the file gc itself unlinked counts as removed
        assert report["removed"] == 1
        monkeypatch.undo()
        assert store.stats()["entries"] == 1

    def test_gc_racing_reads_and_writes_never_tears(self, tmp_path):
        store = ArtifactStore(tmp_path / "farm")
        fingerprints = [f"{i:02x}" + f"{i:062x}" for i in range(16)]
        stop = threading.Event()
        torn = []
        errors = []

        def reader():
            while not stop.is_set():
                for index, fp in enumerate(fingerprints):
                    got = store.get(fp)
                    # a miss is fine (gc got it); a hit must be intact
                    if got is not None and got != doc(index):
                        torn.append(got)

        def writer():
            while not stop.is_set():
                for index, fp in enumerate(fingerprints):
                    store.put(fp, doc(index))

        def janitor():
            try:
                while not stop.is_set():
                    store.gc(max_entries=8)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=target)
                   for target in (reader, reader, writer, janitor)]
        for thread in threads:
            thread.start()
        time.sleep(0.6)
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
        assert torn == []
        assert errors == []
        # atomic publishes + digest checks: racing gc manufactures
        # misses, never corruption
        assert store.counters["corrupt"] == 0

    def test_miss_after_gc_self_heals_on_rewrite(self, store):
        fingerprints = self.fill(store, 2)
        store.gc(max_entries=0)
        assert store.get(fingerprints[0]) is None  # plain miss
        store.put(fingerprints[0], doc(0))  # recompute-and-write heals
        assert store.get(fingerprints[0]) == doc(0)


class TestCounterCorrectness:
    def test_counters_are_exact_across_threads(self, tmp_path):
        store = ArtifactStore(tmp_path / "farm")
        store.put(FP, doc(1))
        workers = 8
        hits_each, misses_each, writes_each = 20, 10, 5

        def work(wid):
            for _ in range(hits_each):
                assert store.get(FP) is not None
            for _ in range(misses_each):
                assert store.get(OTHER) is None
            for index in range(writes_each):
                fp = f"{wid:02x}" + f"{index:062x}"
                store.put(fp, doc(index))

        threads = [threading.Thread(target=work, args=(i,))
                   for i in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert store.counters["hits"] == workers * hits_each
        assert store.counters["misses"] == workers * misses_each
        assert store.counters["writes"] == workers * writes_each + 1
        assert store.counters["corrupt"] == 0
        # stats() folds the same counters in consistently
        assert store.stats()["session"] == store.counters
