"""Fingerprints: stable, structure-sensitive, version-sensitive."""

import pytest

from repro.engine.execution_model import ExecutionModel
from repro.farm import FingerprintError, fingerprint, model_doc, \
    try_fingerprint
from repro.farm.fingerprint import canonical_json
from repro.moccml.semantics.runtime import ConstraintRuntime
from repro.workbench import CcslSpec, ExploreSpec, SimulateSpec, load

APPLICATION = """
application fpdemo {
  agent src
  agent dst
  place src -> dst push 1 pop 1 capacity 2
}
"""


def sigpml_model():
    return load(APPLICATION).execution_model


def ccsl_model(bound=2):
    spec = CcslSpec("clocks", events=["a", "b", "c"],
                    constraints=[("Alternates", ["a", "b"]),
                                 ("BoundedPrecedes", ["b", "c", bound])])
    return load(spec).execution_model


class TestStability:
    def test_same_source_same_fingerprint(self):
        spec = ExploreSpec("fpdemo", max_states=100)
        assert fingerprint(sigpml_model(), spec) \
            == fingerprint(sigpml_model(), spec)

    def test_fingerprint_is_hex_sha256(self):
        value = fingerprint(sigpml_model(), SimulateSpec("fpdemo"))
        assert len(value) == 64
        int(value, 16)  # parses as hex

    def test_model_doc_is_canonical_json_able(self):
        document = model_doc(ccsl_model())
        assert canonical_json(document) == canonical_json(
            model_doc(ccsl_model()))

    def test_runs_do_not_drift_the_fingerprint(self):
        # explore/simulate work on clones; the handle model must
        # fingerprint identically before and after a batch
        from repro.engine.explorer import explore
        model = sigpml_model()
        spec = ExploreSpec("fpdemo", max_states=100)
        before = fingerprint(model, spec)
        explore(model, max_states=100)
        assert fingerprint(model, spec) == before


class TestSensitivity:
    def test_different_spec_different_fingerprint(self):
        model = sigpml_model()
        assert fingerprint(model, ExploreSpec("fpdemo", max_states=100)) \
            != fingerprint(model, ExploreSpec("fpdemo", max_states=200))

    def test_different_kind_different_fingerprint(self):
        model = sigpml_model()
        assert fingerprint(model, SimulateSpec("fpdemo", steps=20)) \
            != fingerprint(model, ExploreSpec("fpdemo"))

    def test_constraint_parameter_changes_fingerprint(self):
        # the bound lives in a runtime attribute, not in the current
        # step formula — structural hashing must still see it
        spec = SimulateSpec("clocks", steps=5)
        assert fingerprint(ccsl_model(bound=2), spec) \
            != fingerprint(ccsl_model(bound=3), spec)

    def test_advanced_state_changes_fingerprint(self):
        model = ccsl_model()
        spec = SimulateSpec("clocks", steps=5)
        before = fingerprint(model, spec)
        model.advance(frozenset({"a"}))
        assert fingerprint(model, spec) != before

    def test_engine_version_changes_fingerprint(self, monkeypatch):
        import repro
        model = sigpml_model()
        spec = SimulateSpec("fpdemo")
        before = fingerprint(model, spec)
        monkeypatch.setattr(repro, "__version__", "999.0.0")
        assert fingerprint(model, spec) != before


class _Opaque(ConstraintRuntime):
    """A runtime carrying an attribute the encoder cannot serialize."""

    def __init__(self):
        super().__init__("opaque", ())
        self.payload = object()


class _Unorderable(ConstraintRuntime):
    """A runtime whose set attribute has no canonical member order."""

    def __init__(self):
        super().__init__("unorderable", ())
        self.mixed = frozenset({("a",), 3})  # tuple vs int: unorderable


class TestUnfingerprintable:
    def test_unorderable_set_raises_fingerprint_error_not_typeerror(self):
        # TypeError would escape try_fingerprint; FingerprintError makes
        # the model uncacheable, which is the sound fallback
        model = ExecutionModel(["x"], [_Unorderable()], name="weird")
        with pytest.raises(FingerprintError, match="unorderable"):
            model_doc(model)
        assert try_fingerprint(model, SimulateSpec("weird")) is None

    def test_unknown_attribute_raises(self):
        model = ExecutionModel(["x"], [_Opaque()], name="opaque-model")
        with pytest.raises(FingerprintError, match="canonical"):
            model_doc(model)

    def test_try_fingerprint_returns_none(self):
        model = ExecutionModel(["x"], [_Opaque()], name="opaque-model")
        assert try_fingerprint(model, SimulateSpec("opaque-model")) is None

    def test_policy_instance_spec_returns_none(self):
        from repro.engine import AsapPolicy
        spec = SimulateSpec("fpdemo", policy=AsapPolicy())
        assert try_fingerprint(sigpml_model(), spec) is None
