"""Tests for CNF conversion and the DPLL solver."""

from repro.boolalg import (
    FALSE,
    TRUE,
    And,
    Iff,
    Implies,
    Not,
    Or,
    Var,
    all_assignments,
    all_sat,
    is_satisfiable,
    iter_models,
    solve_one,
    to_cnf_clauses,
    tseitin_clauses,
)
from repro.boolalg.cnf import clauses_support

a, b, c, d = Var("a"), Var("b"), Var("c"), Var("d")


def clause_eval(clauses, assignment):
    return all(
        any(assignment[name] == polarity for name, polarity in clause)
        for clause in clauses)


class TestDistributiveCnf:
    def test_true_false(self):
        assert to_cnf_clauses(TRUE) == []
        assert to_cnf_clauses(FALSE) == [frozenset()]

    def test_literal(self):
        assert to_cnf_clauses(a) == [frozenset({("a", True)})]
        assert to_cnf_clauses(Not(a)) == [frozenset({("a", False)})]

    def test_equivalence_on_truth_table(self):
        exprs = [
            Implies(a, b),
            Iff(a, Or(b, c)),
            Or(And(a, b), And(c, d)),
            And(Or(a, b), Or(Not(a), c), Or(Not(b), Not(c))),
            Not(And(a, Or(b, Not(c)))),
        ]
        for expr in exprs:
            clauses = to_cnf_clauses(expr)
            for assignment in all_assignments(expr.support()):
                assert clause_eval(clauses, assignment) == expr.evaluate(
                    assignment), (expr, assignment)

    def test_tautology_pruned(self):
        assert to_cnf_clauses(Or(a, Not(a))) == []


class TestTseitin:
    def test_constants(self):
        assert tseitin_clauses(TRUE) == ([], None)
        clauses, root = tseitin_clauses(FALSE)
        assert clauses == [frozenset()] and root is None

    def test_equisatisfiable(self):
        exprs = [
            Iff(a, Or(b, c)),
            Or(And(a, b), And(c, d), And(Not(a), Not(d))),
            And(Or(a, b), Or(Not(a), c)),
        ]
        for expr in exprs:
            clauses, _root = tseitin_clauses(expr)
            original_vars = expr.support()
            # for every model of expr, the tseitin clauses are satisfiable
            # with matching values on the original variables, and vice versa
            source_models = {
                frozenset(m.items()) for m in iter_models(expr)}
            tseitin_models = set()
            aux_names = clauses_support(clauses, include_aux=True) - original_vars
            for assignment in all_assignments(
                    original_vars | aux_names):
                if clause_eval(clauses, assignment):
                    tseitin_models.add(frozenset(
                        (name, value) for name, value in assignment.items()
                        if name in original_vars))
            assert source_models == tseitin_models

    def test_aux_variables_prefixed(self):
        clauses, root = tseitin_clauses(Or(And(a, b), c))
        assert root.startswith("_t")
        assert clauses_support(clauses) == frozenset({"a", "b", "c"})


class TestSolver:
    def test_sat_and_unsat(self):
        assert is_satisfiable(And(a, Or(Not(a), b)))
        assert not is_satisfiable(And(a, Not(a)))
        assert not is_satisfiable(
            And(Or(a, b), Or(Not(a), b), Or(a, Not(b)), Or(Not(a), Not(b))))

    def test_solve_one_returns_model(self):
        expr = And(Or(a, b), Not(a))
        model = solve_one(expr)
        assert model is not None
        assert expr.evaluate(model)

    def test_solve_one_covers_support(self):
        model = solve_one(Or(a, b))
        assert set(model) == {"a", "b"}

    def test_all_sat_counts(self):
        # x | y has 3 models over {x, y}
        assert len(list(all_sat(Or(a, b)))) == 3
        # a has 2 models over {a, b} (b free)
        assert len(list(all_sat(a, over=frozenset({"a", "b"})))) == 2

    def test_all_sat_models_are_models(self):
        expr = And(Implies(a, b), Or(b, c), Not(And(a, c)))
        models = list(all_sat(expr))
        for model in models:
            assert expr.evaluate(model)
        # compare against brute force
        brute = list(iter_models(expr))
        assert len(models) == len(brute)
        assert {frozenset(m.items()) for m in models} == {
            frozenset(m.items()) for m in brute}

    def test_all_sat_deterministic(self):
        expr = Or(And(a, b), c)
        first = [tuple(sorted(m.items())) for m in all_sat(expr)]
        second = [tuple(sorted(m.items())) for m in all_sat(expr)]
        assert first == second

    def test_all_sat_limit(self):
        models = list(all_sat(TRUE, over=frozenset("abcd"), limit=5))
        assert len(models) == 5
