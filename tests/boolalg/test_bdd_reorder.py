"""Dynamic variable reordering: sifting correctness and the auto trigger.

A reorder may only change *where* variables sit in the order, never
*what* any surviving node denotes. These tests pin that contract three
ways: property-based semantic invariance (``sat_count``, ``evaluate``
and ``iter_models`` agree before and after random reorders), the
adjacent-level swap primitive in isolation (white-box), and the
auto-reorder trigger machinery (standalone firing, the churn skip, and
engine-style explicit roots). A brute-force sweep over every ``ite``
triple of a small function space guards the normalization rules —
operand collapses can re-merge branches, and a missed re-check there
historically corrupted canonicity.
"""

import itertools

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.boolalg import And, Bdd, Iff, Implies, Not, Or, Var, Xor, \
    all_assignments

NAMES = ["p", "q", "r", "s", "t"]


def exprs(max_leaves: int = 10):
    leaf = st.sampled_from([Var(name) for name in NAMES])

    def extend(children):
        return st.one_of(
            children.map(Not),
            st.tuples(children, children).map(lambda p: And(*p)),
            st.tuples(children, children).map(lambda p: Or(*p)),
            st.tuples(children, children).map(lambda p: Implies(*p)),
            st.tuples(children, children).map(lambda p: Iff(*p)),
            st.tuples(children, children).map(lambda p: Xor(*p)),
        )

    return st.recursive(leaf, extend, max_leaves=max_leaves)


def fresh_bdd() -> Bdd:
    bdd = Bdd()
    for name in NAMES:
        bdd.declare(name)
    return bdd


class TestReorderSemanticInvariance:
    @settings(max_examples=60, deadline=None)
    @given(expr=exprs(), budget=st.integers(min_value=1, max_value=10))
    def test_sat_count_evaluate_models_survive_reorder(self, expr, budget):
        bdd = fresh_bdd()
        node = bdd.from_expr(expr)
        models_before = sorted(
            tuple(sorted(model.items()))
            for model in bdd.iter_models(node, NAMES))
        count_before = bdd.sat_count(node, NAMES)
        values_before = [bdd.evaluate(node, dict(assignment))
                        for assignment in all_assignments(NAMES)]

        bdd.reorder(budget=budget, roots=[node])

        assert bdd.sat_count(node, NAMES) == count_before
        assert [bdd.evaluate(node, dict(assignment))
                for assignment in all_assignments(NAMES)] == values_before
        assert sorted(tuple(sorted(model.items()))
                      for model in bdd.iter_models(node, NAMES)) \
            == models_before

    @settings(max_examples=30, deadline=None)
    @given(expr=exprs())
    def test_repeated_reorders_converge_and_stay_sound(self, expr):
        bdd = fresh_bdd()
        node = bdd.from_expr(expr)
        count = bdd.sat_count(node, NAMES)
        for _ in range(3):
            bdd.reorder(roots=[node])
            assert bdd.sat_count(node, NAMES) == count

    @settings(max_examples=30, deadline=None)
    @given(left=exprs(max_leaves=6), right=exprs(max_leaves=6))
    def test_canonicity_survives_reorder(self, left, right):
        """Rebuilding a function after a reorder lands on the same node
        id a surviving root already has — the unique table stays
        canonical under the new order."""
        bdd = fresh_bdd()
        node = bdd.from_expr(And(left, Or(right, left)))
        bdd.reorder(roots=[node])
        again = bdd.from_expr(And(left, Or(right, left)))
        assert again == node


class TestRenameSubstituteAfterReorder:
    """Sifting can interleave variables arbitrarily, breaking the
    order-monotonicity that ``rename``'s fast path assumes; it must
    detect that and still produce the semantically renamed function."""

    def setup_node(self):
        bdd = Bdd()
        for name in ("a", "b", "a'", "b'"):
            bdd.declare(name)
        expr = And(Or(Var("a"), Var("b")), Not(And(Var("a"), Var("b"))))
        return bdd, bdd.from_expr(expr)

    def test_rename_after_non_monotone_reorder(self):
        bdd, node = self.setup_node()
        bdd.reorder(roots=[node])  # may interleave a/b with a'/b'
        renamed = bdd.rename(node, {"a": "a'", "b": "b'"})
        for va, vb in itertools.product((False, True), repeat=2):
            want = (va or vb) and not (va and vb)
            got = bdd.evaluate(
                renamed, {"a'": va, "b'": vb, "a": False, "b": False})
            assert got == want, (va, vb)

    def test_substitute_after_reorder(self):
        bdd, node = self.setup_node()
        bdd.reorder(roots=[node])
        swapped = bdd.substitute(node, {"a": "b", "b": "a"})
        for va, vb in itertools.product((False, True), repeat=2):
            want = (vb or va) and not (vb and va)
            assert bdd.evaluate(swapped, {"a": va, "b": vb}) == want


class TestAdjacentSwapPrimitive:
    """White-box: one adjacent-level swap, semantics and canonicity."""

    def run_swap(self, bdd, node, upper_level):
        bdd._reordering = True
        try:
            bdd._init_reorder_refs([node])
            bdd._init_level_buckets()
            bdd._swap_adjacent(upper_level)
        finally:
            bdd._reordering = False
            bdd._level_nodes = {}
        bdd.clear_operation_caches()

    @pytest.mark.parametrize("upper", [0, 1, 2, 3])
    def test_single_swap_preserves_semantics(self, upper):
        bdd = fresh_bdd()
        expr = Or(And(Var("p"), Var("q")),
                  And(Var("r"), Xor(Var("s"), Var("t"))))
        node = bdd.from_expr(expr)
        values = [bdd.evaluate(node, dict(assignment))
                  for assignment in all_assignments(NAMES)]
        order_before = bdd.order
        self.run_swap(bdd, node, upper)
        order_after = bdd.order
        # the two levels swapped places, nothing else moved
        assert order_after[upper] == order_before[upper + 1]
        assert order_after[upper + 1] == order_before[upper]
        assert [bdd.evaluate(node, dict(assignment))
                for assignment in all_assignments(NAMES)] == values

    def test_swap_then_swap_back_is_identity_on_semantics(self):
        bdd = fresh_bdd()
        node = bdd.from_expr(Iff(Var("p"), Or(Var("q"), Var("r"))))
        count = bdd.sat_count(node, NAMES)
        self.run_swap(bdd, node, 1)
        self.run_swap(bdd, node, 1)
        assert bdd.order == NAMES
        assert bdd.sat_count(node, NAMES) == count


class TestAutoReorderTrigger:
    def build_junk(self, bdd, rounds=24):
        """Allocate enough distinct structure to cross a small
        threshold: a growing union of minterms — every partial union is
        a new function, so each round genuinely extends the table."""
        acc = []
        union = bdd.zero
        for index in range(rounds):
            minterm = bdd.one
            for position, name in enumerate(NAMES):
                literal = (bdd.var(name) if (index >> position) & 1
                           else bdd.nvar(name))
                minterm = bdd.apply_and(minterm, literal)
            union = bdd.apply_or(union, minterm)
            acc.append(union)
        return acc

    def test_trigger_schedules_and_standalone_fires(self):
        bdd = Bdd(auto_reorder_threshold=64)
        for name in NAMES:
            bdd.declare(name)
        assert not bdd.reorder_due()
        nodes = self.build_junk(bdd)
        assert bdd.reorder_due()  # table growth scheduled a reorder
        # any top-level operation is a safe point for a standalone
        # manager; the pending reorder fires there with default roots
        count = bdd.sat_count(nodes[0], NAMES)
        bdd.exists(nodes[0], ["p"])
        assert bdd.reorder_count == 1
        assert not bdd.reorder_due()
        assert bdd.sat_count(nodes[0], NAMES) == count

    def test_threshold_ratchets_after_firing(self):
        bdd = Bdd(auto_reorder_threshold=64)
        for name in NAMES:
            bdd.declare(name)
        self.build_junk(bdd)
        bdd.exists(bdd.var("p"), ["q"])  # fire
        assert bdd._reorder_at >= 2 * 64
        assert not bdd.reorder_due()

    def test_provider_transfers_firing_to_the_owner(self):
        """With a roots provider installed the manager never fires on
        its own — the owning engine must call reorder() at its safe
        points (where it can pin in-flight nodes)."""
        bdd = Bdd(auto_reorder_threshold=64)
        for name in NAMES:
            bdd.declare(name)
        nodes = self.build_junk(bdd)
        keep = nodes[:2]
        bdd.reorder_roots_provider = lambda: list(keep)
        assert bdd.reorder_due()
        bdd.exists(keep[0], ["p"])  # NOT a safe point for the owner
        assert bdd.reorder_count == 0
        assert bdd.reorder_due()  # still pending, awaiting the owner
        # the owner fires it explicitly; live structure here is tiny
        # relative to the table, so the churn check skips the sift but
        # still re-arms the trigger
        before = bdd._reorder_at
        bdd.reorder(budget=4, auto=True)
        assert not bdd.reorder_due()
        assert bdd._reorder_at >= before

    def test_auto_churn_skip_keeps_caches_and_ids(self):
        """An auto reorder whose roots reach only a sliver of the table
        must skip the sift: ids stay valid, caches stay warm."""
        bdd = Bdd(auto_reorder_threshold=64)
        for name in NAMES:
            bdd.declare(name)
        self.build_junk(bdd)
        node = bdd.from_expr(And(Var("p"), Or(Var("q"), Var("r"))))
        count = bdd.sat_count(node, NAMES)
        cache_before = bdd.cache_sizes()["ite"]
        fired_before = bdd.reorder_count  # standalone may have fired
        assert cache_before > 0
        gain = bdd.reorder(roots=[node], auto=True)
        assert gain == 0
        assert bdd.reorder_count == fired_before  # skipped, not run
        assert bdd.cache_sizes()["ite"] == cache_before
        assert bdd.sat_count(node, NAMES) == count

    def test_explicit_reorder_never_churn_skips(self):
        """A user-requested reorder always sifts, even tiny roots."""
        bdd = Bdd()
        for name in NAMES:
            bdd.declare(name)
        self.build_junk(bdd)
        node = bdd.from_expr(And(Var("p"), Var("s")))
        bdd.reorder(roots=[node])
        assert bdd.reorder_count == 1

    def test_unrooted_ids_are_invalidated(self):
        """The live-only contract: a reorder with explicit roots
        evicts everything unreachable from them — rebuilding the same
        function afterwards allocates a fresh canonical node."""
        bdd = fresh_bdd()
        keep = bdd.from_expr(And(Var("p"), Var("q")))
        drop = bdd.from_expr(Xor(Var("r"), Var("s")))
        bdd.reorder(roots=[keep])
        rebuilt = bdd.from_expr(Xor(Var("r"), Var("s")))
        assert rebuilt != drop  # the old id did not survive
        assert bdd.sat_count(rebuilt, ["r", "s"]) == 2


class TestIteTripleCanonicity:
    """Brute force every ite triple over a small closed function space:
    results must match truth-table semantics and stay canonical (one
    node id per function). Guards the normalization collapses — f==g /
    f==h rewrites can re-merge g and h, and the not_f path can move a
    terminal into the f slot; both need their g==h re-check."""

    def test_all_triples_of_two_variable_space(self):
        bdd = Bdd()
        for name in ("a", "b"):
            bdd.declare(name)
        a, b = bdd.var("a"), bdd.var("b")
        # close the 2-variable function space: all 16 functions
        space = {bdd.zero, bdd.one, a, b}
        while True:
            grown = set(space)
            for f, g in itertools.product(list(space), repeat=2):
                grown.add(bdd.apply_and(f, g))
                grown.add(bdd.apply_or(f, g))
                grown.add(bdd.apply_xor(f, g))
                grown.add(bdd.apply_not(f))
            if grown == space:
                break
            space = grown
        assignments = [dict(zip(("a", "b"), bits))
                       for bits in itertools.product((False, True),
                                                     repeat=2)]

        def table(node):
            return tuple(bdd.evaluate(node, one) for one in assignments)

        canonical: dict[tuple, int] = {table(node): node for node in space}
        assert len(canonical) == 16  # the space really is closed

        for f, g, h in itertools.product(sorted(space), repeat=3):
            result = bdd.ite(f, g, h)
            want = tuple(
                gv if fv else hv
                for fv, gv, hv in zip(table(f), table(g), table(h)))
            assert table(result) == want, (f, g, h)
            assert canonical.setdefault(want, result) == result, \
                f"two node ids for one function via ite({f},{g},{h})"
