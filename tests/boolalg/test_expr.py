"""Unit tests for the boolean expression AST."""

import pytest

from repro.boolalg import (
    FALSE,
    TRUE,
    And,
    Const,
    Iff,
    Implies,
    Not,
    Or,
    Var,
    Xor,
    all_assignments,
    iter_models,
)

a, b, c = Var("a"), Var("b"), Var("c")


class TestConstructors:
    def test_constants_shared(self):
        assert Const(True) is TRUE
        assert Const(False) is FALSE

    def test_not_folds_constants(self):
        assert Not(TRUE) is FALSE
        assert Not(FALSE) is TRUE

    def test_not_involution(self):
        assert Not(Not(a)) == a

    def test_and_identity_absorbing(self):
        assert And(a, TRUE) == a
        assert And(a, FALSE) is FALSE
        assert And() is TRUE

    def test_or_identity_absorbing(self):
        assert Or(a, FALSE) == a
        assert Or(a, TRUE) is TRUE
        assert Or() is FALSE

    def test_flattening(self):
        expr = And(And(a, b), c)
        assert expr == And(a, b, c)

    def test_dedup(self):
        assert And(a, a) == a
        assert Or(a, a, a) == a

    def test_complement_detection(self):
        assert And(a, Not(a)) is FALSE
        assert Or(a, Not(a)) is TRUE

    def test_operator_sugar(self):
        assert (a & b) == And(a, b)
        assert (a | b) == Or(a, b)
        assert (~a) == Not(a)
        assert (a >> b) == Implies(a, b)
        assert (a ^ b) == Xor(a, b)

    def test_no_implicit_truth_value(self):
        with pytest.raises(TypeError):
            bool(a)

    def test_var_requires_name(self):
        with pytest.raises(ValueError):
            Var("")


class TestEvaluate:
    def test_subevent_semantics(self):
        # paper: e1 sub-event of e2 corresponds to e1 => e2
        expr = Implies(a, b)
        assert expr.evaluate({"a": False, "b": False})
        assert expr.evaluate({"a": False, "b": True})
        assert expr.evaluate({"a": True, "b": True})
        assert not expr.evaluate({"a": True, "b": False})

    def test_iff(self):
        expr = Iff(a, b)
        assert expr.evaluate({"a": True, "b": True})
        assert expr.evaluate({"a": False, "b": False})
        assert not expr.evaluate({"a": True, "b": False})

    def test_xor(self):
        expr = Xor(a, b)
        assert not expr.evaluate({"a": True, "b": True})
        assert expr.evaluate({"a": True, "b": False})

    def test_missing_variable_raises(self):
        with pytest.raises(KeyError):
            a.evaluate({})


class TestSupportSubstitute:
    def test_support(self):
        expr = And(a, Or(b, Not(c)))
        assert expr.support() == frozenset({"a", "b", "c"})

    def test_substitute_variable(self):
        expr = And(a, b).substitute({"a": c})
        assert expr == And(c, b)

    def test_restrict_partial_eval(self):
        expr = And(a, Or(b, c))
        assert expr.restrict({"a": True, "b": True}) is TRUE
        assert expr.restrict({"a": False}) is FALSE
        assert expr.restrict({"b": False}) == And(a, c)


class TestEnumeration:
    def test_all_assignments_count(self):
        assert len(list(all_assignments(["x", "y", "z"]))) == 8

    def test_iter_models_conjunction(self):
        models = list(iter_models(And(a, b)))
        assert models == [{"a": True, "b": True}]

    def test_iter_models_with_free_variable(self):
        models = list(iter_models(a, over=["a", "b"]))
        assert len(models) == 2
        assert all(m["a"] for m in models)

    def test_unconstrained_has_2n_futures(self):
        # paper §II-C: with no constraints there are 2^n possible steps
        models = list(iter_models(TRUE, over=["e1", "e2", "e3", "e4"]))
        assert len(models) == 16
