"""Tests for BDD maximum-true-model extraction (the ASAP fast path)."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.boolalg import (
    And,
    Bdd,
    FALSE,
    Iff,
    Implies,
    Not,
    Or,
    TRUE,
    Var,
    all_assignments,
)

a, b, c, d = Var("a"), Var("b"), Var("c"), Var("d")
NAMES = ["a", "b", "c", "d"]


class TestMaxTrueModel:
    def test_unsat_returns_none(self):
        bdd = Bdd()
        assert bdd.max_true_model(bdd.zero, ["a"]) is None
        node = bdd.from_expr(And(a, Not(a)))
        assert bdd.max_true_model(node, ["a"]) is None

    def test_tautology_all_true(self):
        bdd = Bdd()
        model = bdd.max_true_model(bdd.one, NAMES)
        assert model == {name: True for name in NAMES}

    def test_forced_false_variable(self):
        bdd = Bdd()
        node = bdd.from_expr(And(Not(a), b))
        model = bdd.max_true_model(node, NAMES)
        assert model["a"] is False
        assert model["b"] is True
        assert model["c"] is True and model["d"] is True  # free -> true

    def test_exclusion_picks_one(self):
        bdd = Bdd()
        node = bdd.from_expr(Not(And(a, b)))
        model = bdd.max_true_model(node, ["a", "b"])
        assert sum(model.values()) == 1

    def test_implication_chain_all_true(self):
        bdd = Bdd()
        node = bdd.from_expr(And(Implies(a, b), Implies(b, c)))
        model = bdd.max_true_model(node, ["a", "b", "c"])
        assert model == {"a": True, "b": True, "c": True}

    def test_support_must_be_covered(self):
        bdd = Bdd()
        node = bdd.from_expr(And(a, b))
        with pytest.raises(ValueError):
            bdd.max_true_model(node, ["a"])

    def test_deterministic(self):
        bdd = Bdd()
        node = bdd.from_expr(Or(And(a, Not(b)), And(Not(a), b)))
        first = bdd.max_true_model(node, NAMES)
        second = bdd.max_true_model(node, NAMES)
        assert first == second


def exprs(max_leaves=10):
    leaf = st.sampled_from([Var(name) for name in NAMES] + [TRUE, FALSE])

    def extend(children):
        return st.one_of(
            children.map(Not),
            st.tuples(children, children).map(lambda p: And(*p)),
            st.tuples(children, children).map(lambda p: Or(*p)),
            st.tuples(children, children).map(lambda p: Implies(*p)),
            st.tuples(children, children).map(lambda p: Iff(*p)),
        )

    return st.recursive(leaf, extend, max_leaves=max_leaves)


@settings(max_examples=150, deadline=None)
@given(exprs())
def test_max_model_is_model_and_maximal(expr):
    bdd = Bdd(order=NAMES)
    node = bdd.from_expr(expr)
    model = bdd.max_true_model(node, NAMES)
    brute_best = None
    for assignment in all_assignments(NAMES):
        if expr.evaluate(assignment):
            count = sum(assignment.values())
            if brute_best is None or count > brute_best:
                brute_best = count
    if brute_best is None:
        assert model is None
    else:
        assert model is not None
        assert expr.evaluate(model)
        assert sum(model.values()) == brute_best
