"""Tests for the BDD package."""

import pytest

from repro.boolalg import (
    FALSE,
    TRUE,
    And,
    Bdd,
    Iff,
    Implies,
    Not,
    Or,
    Var,
    Xor,
    all_assignments,
)

a, b, c, d = Var("a"), Var("b"), Var("c"), Var("d")


class TestBasics:
    def test_terminals(self):
        bdd = Bdd()
        assert bdd.from_expr(TRUE) == bdd.one
        assert bdd.from_expr(FALSE) == bdd.zero

    def test_var_and_negation(self):
        bdd = Bdd()
        x = bdd.var("x")
        assert bdd.evaluate(x, {"x": True})
        assert not bdd.evaluate(x, {"x": False})
        nx = bdd.apply_not(x)
        assert bdd.evaluate(nx, {"x": False})

    def test_canonicity(self):
        bdd = Bdd(order=["a", "b", "c"])
        left = bdd.from_expr(Or(And(a, b), And(a, c), And(b, c)))
        right = bdd.from_expr(Or(And(a, Or(b, c)), And(b, c)))
        assert left == right  # same function -> same node

    def test_tautology_collapses_to_one(self):
        bdd = Bdd()
        node = bdd.from_expr(Or(a, Not(a)))
        assert node == bdd.one

    def test_contradiction_collapses_to_zero(self):
        bdd = Bdd()
        node = bdd.from_expr(And(Iff(a, b), Xor(a, b)))
        assert node == bdd.zero


class TestAgainstTruthTable:
    exprs = [
        Implies(a, b),
        Iff(a, Or(b, c)),
        Or(And(a, b), And(c, d)),
        And(Or(a, b), Or(Not(a), c), Or(Not(b), Not(c))),
        Xor(Xor(a, b), Xor(c, d)),
    ]

    @pytest.mark.parametrize("expr", exprs, ids=lambda e: repr(e)[:40])
    def test_evaluate_matches(self, expr):
        bdd = Bdd()
        node = bdd.from_expr(expr)
        for assignment in all_assignments(expr.support()):
            assert bdd.evaluate(node, assignment) == expr.evaluate(assignment)

    @pytest.mark.parametrize("expr", exprs, ids=lambda e: repr(e)[:40])
    def test_sat_count_matches(self, expr):
        bdd = Bdd()
        node = bdd.from_expr(expr)
        support = sorted(expr.support())
        brute = sum(
            1 for assignment in all_assignments(support)
            if expr.evaluate(assignment))
        assert bdd.sat_count(node, support) == brute

    @pytest.mark.parametrize("expr", exprs, ids=lambda e: repr(e)[:40])
    def test_iter_models_matches(self, expr):
        bdd = Bdd()
        node = bdd.from_expr(expr)
        support = sorted(expr.support())
        brute = {
            frozenset(assignment.items())
            for assignment in all_assignments(support)
            if expr.evaluate(assignment)}
        models = list(bdd.iter_models(node, support))
        assert len(models) == len(brute)
        assert {frozenset(m.items()) for m in models} == brute


class TestModelsOverLargerSets:
    def test_free_variables_expanded(self):
        bdd = Bdd()
        node = bdd.from_expr(a)
        models = list(bdd.iter_models(node, ["a", "b", "c"]))
        assert len(models) == 4
        assert all(m["a"] for m in models)
        assert bdd.sat_count(node, ["a", "b", "c"]) == 4

    def test_two_to_the_n_futures(self):
        # paper §II-C: no constraints -> 2^n acceptable steps
        bdd = Bdd()
        events = [f"e{i}" for i in range(10)]
        assert bdd.sat_count(bdd.one, events) == 1024

    def test_support_must_be_covered(self):
        bdd = Bdd()
        node = bdd.from_expr(And(a, b))
        with pytest.raises(ValueError):
            bdd.sat_count(node, ["a"])
        with pytest.raises(ValueError):
            list(bdd.iter_models(node, ["a"]))


class TestOperations:
    def test_restrict(self):
        bdd = Bdd()
        node = bdd.from_expr(And(a, Or(b, c)))
        restricted = bdd.restrict(node, {"a": True, "b": False})
        expected = bdd.from_expr(c)
        assert restricted == expected
        assert bdd.restrict(node, {"a": False}) == bdd.zero

    def test_exists(self):
        bdd = Bdd()
        node = bdd.from_expr(And(a, b))
        projected = bdd.exists(node, ["b"])
        assert projected == bdd.from_expr(a)

    def test_exists_removes_from_support(self):
        bdd = Bdd()
        node = bdd.from_expr(Or(And(a, b), c))
        projected = bdd.exists(node, ["a", "b"])
        assert bdd.support(projected) <= frozenset({"c"})

    def test_support(self):
        bdd = Bdd()
        # b is irrelevant in (a & b) | (a & ~b) == a
        node = bdd.from_expr(Or(And(a, b), And(a, Not(b))))
        assert bdd.support(node) == frozenset({"a"})

    def test_node_sharing(self):
        bdd = Bdd()
        first = bdd.from_expr(And(a, b))
        before = bdd.node_count()
        second = bdd.from_expr(And(a, b))
        assert first == second
        assert bdd.node_count() == before


class TestRename:
    def test_order_preserving_substitution(self):
        bdd = Bdd(order=["a", "a'", "b", "b'"])
        node = bdd.from_expr(And(Var("a'"), Not(Var("b'"))))
        renamed = bdd.rename(node, {"a'": "a", "b'": "b"})
        assert renamed == bdd.from_expr(And(a, Not(b)))

    def test_identity_on_unrelated_function(self):
        bdd = Bdd(order=["a", "b", "c"])
        node = bdd.from_expr(Or(a, c))
        assert bdd.rename(node, {"b": "x"}) == node

    def test_undeclared_source_is_ignored(self):
        bdd = Bdd(order=["a"])
        node = bdd.from_expr(a)
        assert bdd.rename(node, {"zzz": "a"}) == node

    def test_non_monotone_mapping_falls_back_to_substitute(self):
        # sifting can interleave bits arbitrarily, so rename must keep
        # working (via substitute) when the map is not order-monotone
        bdd = Bdd(order=["a", "b"])
        node = bdd.from_expr(And(a, Not(b)))
        renamed = bdd.rename(node, {"a": "z"})  # z is declared after b
        assert renamed == bdd.from_expr(And(Var("z"), Not(b)))

    def test_swap_falls_back_to_substitute(self):
        bdd = Bdd(order=["a", "b"])
        node = bdd.from_expr(And(a, Not(b)))
        renamed = bdd.rename(node, {"a": "b", "b": "a"})
        assert renamed == bdd.from_expr(And(b, Not(a)))

    def test_rename_preserves_models(self):
        bdd = Bdd(order=["p", "p'", "q", "q'"])
        node = bdd.from_expr(Iff(Var("p'"), Var("q'")))
        renamed = bdd.rename(node, {"p'": "p", "q'": "q"})
        for assignment in all_assignments(frozenset({"p", "q"})):
            primed = {name + "'": value
                      for name, value in assignment.items()}
            assert bdd.evaluate(renamed, assignment) == \
                bdd.evaluate(node, primed)


class TestSubstitute:
    """The general simultaneous substitution — rename's paired twin for
    the non-monotone (current↔primed swap) case."""

    def test_swap_is_simultaneous(self):
        bdd = Bdd(order=["a", "b"])
        node = bdd.from_expr(And(a, Not(b)))
        swapped = bdd.substitute(node, {"a": "b", "b": "a"})
        assert swapped == bdd.from_expr(And(b, Not(a)))

    def test_current_primed_shift_both_ways(self):
        bdd = Bdd(order=["p", "p'", "q", "q'"])
        node = bdd.from_expr(Iff(Var("p"), Not(Var("q"))))
        primed = bdd.substitute(node, {"p": "p'", "q": "q'"})
        assert primed == bdd.from_expr(Iff(Var("p'"), Not(Var("q'"))))
        # and back — the round trip is the identity
        assert bdd.substitute(primed, {"p'": "p", "q'": "q"}) == node

    def test_agrees_with_rename_on_monotone_maps(self):
        bdd = Bdd(order=["a", "a'", "b", "b'"])
        node = bdd.from_expr(And(Var("a'"), Not(Var("b'"))))
        mapping = {"a'": "a", "b'": "b"}
        assert bdd.substitute(node, mapping) == bdd.rename(node, mapping)

    def test_undeclared_source_is_ignored(self):
        bdd = Bdd(order=["a"])
        node = bdd.from_expr(a)
        assert bdd.substitute(node, {"zzz": "a"}) == node

    def test_swap_preserves_models(self):
        bdd = Bdd(order=["p", "q", "r"])
        node = bdd.from_expr(Or(And(Var("p"), Var("q")), Not(Var("r"))))
        swapped = bdd.substitute(node, {"p": "r", "r": "p"})
        for assignment in all_assignments(frozenset({"p", "q", "r"})):
            exchanged = dict(assignment, p=assignment["r"],
                             r=assignment["p"])
            assert bdd.evaluate(swapped, assignment) == \
                bdd.evaluate(node, exchanged)

    def test_interleaved_relation_shift(self):
        # the exact shape image/preimage uses: cur/primed interleaved
        # with an event variable in between
        bdd = Bdd(order=["e", "s0", "s0'", "s1", "s1'"])
        node = bdd.from_expr(And(Var("s0"), Or(Var("s1"), Var("e"))))
        shifted = bdd.substitute(node, {"s0": "s0'", "s1": "s1'"})
        assert shifted == bdd.from_expr(
            And(Var("s0'"), Or(Var("s1'"), Var("e"))))


class TestExprMemoBound:
    def test_memo_is_evicted_not_pinned(self):
        bdd = Bdd()
        limit = Bdd._EXPR_CACHE_LIMIT
        total = limit + 500
        for index in range(total):
            bdd.from_expr(Or(Var(f"v{index}"), Var(f"v{index + 1}")))
            assert bdd.cache_sizes()["expr"] <= limit
        assert bdd.cache_sizes()["expr"] == limit

    def test_hot_entries_survive_eviction(self):
        bdd = Bdd()
        hot = And(a, b)
        bdd.from_expr(hot)
        original_limit = Bdd._EXPR_CACHE_LIMIT
        try:
            Bdd._EXPR_CACHE_LIMIT = 64
            for index in range(200):
                bdd.from_expr(hot)  # keep it recently used
                bdd.from_expr(Or(Var(f"w{index}"), c))
            assert hot in bdd._expr_cache
            assert bdd.cache_sizes()["expr"] <= 64
        finally:
            Bdd._EXPR_CACHE_LIMIT = original_limit
