"""Property-based tests: BDD, CNF and DPLL agree with direct evaluation."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.boolalg import (
    And,
    Bdd,
    Iff,
    Implies,
    Not,
    Or,
    Var,
    Xor,
    all_assignments,
    all_sat,
    is_satisfiable,
    to_cnf_clauses,
)

NAMES = ["p", "q", "r", "s"]


def exprs(max_leaves: int = 12):
    leaf = st.one_of(
        st.sampled_from([Var(name) for name in NAMES]),
    )

    def extend(children):
        return st.one_of(
            children.map(Not),
            st.tuples(children, children).map(lambda p: And(*p)),
            st.tuples(children, children).map(lambda p: Or(*p)),
            st.tuples(children, children).map(lambda p: Implies(*p)),
            st.tuples(children, children).map(lambda p: Iff(*p)),
            st.tuples(children, children).map(lambda p: Xor(*p)),
        )

    return st.recursive(leaf, extend, max_leaves=max_leaves)


@settings(max_examples=120, deadline=None)
@given(exprs())
def test_bdd_matches_evaluation(expr):
    bdd = Bdd(order=NAMES)
    node = bdd.from_expr(expr)
    for assignment in all_assignments(NAMES):
        assert bdd.evaluate(node, assignment) == expr.evaluate(assignment)


@settings(max_examples=120, deadline=None)
@given(exprs())
def test_cnf_matches_evaluation(expr):
    clauses = to_cnf_clauses(expr)
    for assignment in all_assignments(NAMES):
        cnf_value = all(
            any(assignment[name] == polarity for name, polarity in clause)
            for clause in clauses)
        assert cnf_value == expr.evaluate(assignment)


@settings(max_examples=120, deadline=None)
@given(exprs())
def test_sat_agrees_with_brute_force(expr):
    brute_sat = any(
        expr.evaluate(assignment) for assignment in all_assignments(NAMES))
    assert is_satisfiable(expr) == brute_sat


@settings(max_examples=80, deadline=None)
@given(exprs(max_leaves=8))
def test_all_sat_matches_bdd_models(expr):
    over = frozenset(NAMES)
    bdd = Bdd(order=NAMES)
    node = bdd.from_expr(expr)
    dpll_models = {frozenset(m.items()) for m in all_sat(expr, over=over)}
    bdd_models = {frozenset(m.items()) for m in bdd.iter_models(node, NAMES)}
    assert dpll_models == bdd_models
    assert bdd.sat_count(node, NAMES) == len(bdd_models)


@settings(max_examples=80, deadline=None)
@given(exprs(max_leaves=8), exprs(max_leaves=8))
def test_de_morgan(left, right):
    lhs = Not(And(left, right))
    rhs = Or(Not(left), Not(right))
    for assignment in all_assignments(NAMES):
        assert lhs.evaluate(assignment) == rhs.evaluate(assignment)


@settings(max_examples=80, deadline=None)
@given(exprs(max_leaves=8))
def test_double_negation_via_bdd(expr):
    bdd = Bdd(order=NAMES)
    node = bdd.from_expr(expr)
    assert bdd.apply_not(bdd.apply_not(node)) == node
