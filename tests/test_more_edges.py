"""Final edge-path sweep: weaver multiplicities, printer builtins,
clause support, modulo arithmetic, registry labels."""

import pytest

from repro.boolalg import And, Or, Not, Var, tseitin_clauses
from repro.boolalg.cnf import clauses_support
from repro.ccsl.library import kernel_library
from repro.ecl import parse_ecl, weave
from repro.errors import MappingError
from repro.iexpr import parse_int_expr
from repro.kernel import MetamodelBuilder, Model
from repro.moccml.library import LibraryRegistry
from repro.moccml.text import print_library


class TestWeaverMultiplicities:
    @pytest.fixture()
    def fan_model(self):
        b = MetamodelBuilder("Fan")
        b.metaclass("Named", attributes={"name": "str"}, abstract=True)
        b.metaclass("Worker", supertypes=["Named"])
        b.metaclass("Pool", supertypes=["Named"], references={
            "workers": ("Worker", "many", "containment")})
        mm = b.build()
        model = Model(mm, "m")
        pool = model.create("Pool", name="pool")
        for index in range(2):
            pool.add("workers", mm.instantiate("Worker", name=f"w{index}"))
        return model

    def test_event_arg_over_many_reference_rejected(self, fan_model):
        registry = LibraryRegistry([kernel_library()])
        document = parse_ecl(
            "context Worker\n  def: go : Event\n"
            "context Pool\n  def: tick : Event\n"
            "  inv Bad:\n    Relation Coincides(self.tick, self.workers.go)\n")
        with pytest.raises(MappingError, match="exactly one"):
            weave(document, fan_model, registry)

    def test_int_arg_must_be_scalar(self, fan_model):
        registry = LibraryRegistry([kernel_library()])
        document = parse_ecl(
            "context Pool\n  def: tick : Event\n"
            "  inv Bad:\n"
            "    Relation Deadline(self.tick, self.tick, self.workers.name)\n")
        with pytest.raises(MappingError):
            weave(document, fan_model, registry)

    def test_navigation_failure_wrapped(self, fan_model):
        registry = LibraryRegistry([kernel_library()])
        document = parse_ecl(
            "context Pool\n  def: tick : Event\n"
            "  inv Bad:\n    Relation SubClock(self.ghost.go, self.tick)\n")
        with pytest.raises(MappingError):
            weave(document, fan_model, registry)


class TestPrinterBuiltins:
    def test_builtin_rendered_as_comment(self):
        text = print_library(kernel_library())
        assert "// builtin definition for SubClock" in text
        # declarations are still parseable prototypes
        assert "declaration Alternates(first: event, second: event)" in text


class TestClauseSupport:
    def test_aux_variables_filtered(self):
        clauses, _root = tseitin_clauses(
            Or(And(Var("x"), Var("y")), Not(Var("z"))))
        visible = clauses_support(clauses)
        assert visible == frozenset({"x", "y", "z"})
        with_aux = clauses_support(clauses, include_aux=True)
        assert len(with_aux) > len(visible)


class TestModulo:
    def test_mod_evaluation(self):
        expr = parse_int_expr("a % 3")
        assert expr.evaluate({"a": 7}) == 1

    def test_mod_by_zero(self):
        from repro.errors import GuardTypeError
        expr = parse_int_expr("a % b")
        with pytest.raises(GuardTypeError):
            expr.evaluate({"a": 1, "b": 0})


class TestRegistryLabels:
    def test_default_label_from_arguments(self):
        registry = LibraryRegistry([kernel_library()])
        runtime = registry.instantiate("Alternates", ["x", "y"])
        assert runtime.label == "Alternates(x, y)"

    def test_explicit_label_wins(self):
        registry = LibraryRegistry([kernel_library()])
        runtime = registry.instantiate("Alternates", ["x", "y"],
                                       label="mine")
        assert runtime.label == "mine"
