"""Tests for the MoCCML textual syntax (parser, printer, DOT)."""

import pytest

from repro.errors import ParseError
from repro.moccml.semantics import AutomatonRuntime
from repro.moccml.text import parse_library, print_library
from repro.moccml.validate import validate_library

FIG3_TEXT = """
// The paper's Fig. 3 library
library SimpleSDFRelationLibrary {
  declaration PlaceConstraint(write: event, read: event, pushRate: int,
                              popRate: int, itsDelay: int, itsCapacity: int)

  automaton PlaceConstraintDef implements PlaceConstraint {
    var size: int = 0
    init size = itsDelay
    initial final state S1
    transition S1 -> S1 when {write} unless {read} \
        [size <= itsCapacity - pushRate] / size += pushRate
    transition S1 -> S1 when {read} unless {write} \
        [size >= popRate] / size -= popRate
  }
}
"""

DECLARATIVE_TEXT = """
library Handshakes {
  declarative HandshakeDef implements Handshake(req: event, ack: event) {
    Alternates(req, ack)
    SubClock(ack, req)
  }
}
"""


class TestParseFig3:
    def test_structure(self):
        library = parse_library(FIG3_TEXT)
        assert library.name == "SimpleSDFRelationLibrary"
        declaration = library.declaration("PlaceConstraint")
        assert [p.name for p in declaration.parameters] == [
            "write", "read", "pushRate", "popRate", "itsDelay", "itsCapacity"]
        definition = library.definition_for("PlaceConstraint")
        assert definition.name == "PlaceConstraintDef"
        assert definition.initial_state == "S1"
        assert definition.final_states == ("S1",)
        assert len(definition.transitions) == 2
        assert definition.allow_stutter

    def test_validates(self):
        library = parse_library(FIG3_TEXT)
        assert validate_library(library) == []

    def test_parsed_automaton_behaves_like_fig3(self):
        library = parse_library(FIG3_TEXT)
        definition = library.definition_for("PlaceConstraint")
        runtime = AutomatonRuntime(definition, {
            "write": "w", "read": "r", "pushRate": 1, "popRate": 1,
            "itsDelay": 0, "itsCapacity": 2})
        assert runtime.variables == {"size": 0}
        runtime.advance(frozenset({"w"}))
        assert runtime.variables == {"size": 1}

    def test_trigger_parsing(self):
        library = parse_library(FIG3_TEXT)
        definition = library.definition_for("PlaceConstraint")
        first = definition.transitions[0]
        assert first.trigger.true_triggers == ("write",)
        assert first.trigger.false_triggers == ("read",)

    def test_continuation_lines(self):
        # the backslash continuations in FIG3_TEXT parsed into one
        # transition each, with the guard attached
        library = parse_library(FIG3_TEXT)
        definition = library.definition_for("PlaceConstraint")
        assert all(t.guard is not None for t in definition.transitions)


class TestParseDeclarative:
    def test_inline_declaration(self):
        library = parse_library(DECLARATIVE_TEXT)
        declaration = library.declaration("Handshake")
        assert [p.kind for p in declaration.parameters] == ["event", "event"]
        definition = library.definition_for("Handshake")
        assert definition.kind == "declarative"
        assert len(definition.instantiations) == 2
        assert definition.instantiations[0].declaration_name == "Alternates"
        assert definition.instantiations[0].arguments == ("req", "ack")


class TestParseErrors:
    def test_missing_library_header(self):
        with pytest.raises(ParseError):
            parse_library("automaton X implements Y {\n}\n")

    def test_unknown_line(self):
        with pytest.raises(ParseError):
            parse_library("library L {\n  banana\n}\n")

    def test_unknown_declaration_reference(self):
        with pytest.raises(Exception):
            parse_library(
                "library L {\n  automaton A implements Missing {\n"
                "    initial state S\n  }\n}\n")

    def test_missing_initial_state(self):
        text = ("library L {\n"
                "  declaration C(a: event)\n"
                "  automaton D implements C {\n"
                "    state S\n"
                "  }\n"
                "}\n")
        with pytest.raises(ParseError):
            parse_library(text)

    def test_multiple_initial_states(self):
        text = ("library L {\n"
                "  declaration C(a: event)\n"
                "  automaton D implements C {\n"
                "    initial state S\n"
                "    initial state T\n"
                "  }\n"
                "}\n")
        with pytest.raises(ParseError):
            parse_library(text)

    def test_bad_parameter(self):
        with pytest.raises(ParseError):
            parse_library("library L {\n  declaration C(a: float)\n}\n")

    def test_nostutter_flag(self):
        text = ("library L {\n"
                "  declaration C(a: event)\n"
                "  automaton D implements C nostutter {\n"
                "    initial state S\n"
                "    transition S -> S when {a}\n"
                "  }\n"
                "}\n")
        library = parse_library(text)
        assert not library.definition_for("C").allow_stutter


class TestRoundTrip:
    def test_fig3_roundtrip(self):
        library = parse_library(FIG3_TEXT)
        text = print_library(library)
        reparsed = parse_library(text)
        assert reparsed.name == library.name
        original = library.definition_for("PlaceConstraint")
        copy = reparsed.definition_for("PlaceConstraint")
        assert copy.state_names() == original.state_names()
        assert len(copy.transitions) == len(original.transitions)
        assert copy.final_states == original.final_states
        # semantics preserved: same behaviour on a short run
        for definition in (original, copy):
            runtime = AutomatonRuntime(definition, {
                "write": "w", "read": "r", "pushRate": 2, "popRate": 1,
                "itsDelay": 1, "itsCapacity": 4})
            runtime.advance(frozenset({"w"}))
            runtime.advance(frozenset({"r"}))
            assert runtime.variables == {"size": 2}

    def test_declarative_roundtrip(self):
        library = parse_library(DECLARATIVE_TEXT)
        reparsed = parse_library(print_library(library))
        definition = reparsed.definition_for("Handshake")
        assert [i.declaration_name for i in definition.instantiations] == [
            "Alternates", "SubClock"]


class TestDot:
    def test_automaton_dot(self):
        from repro.moccml.draw import automaton_to_dot
        library = parse_library(FIG3_TEXT)
        dot = automaton_to_dot(library.definition_for("PlaceConstraint"))
        assert "digraph" in dot
        assert '"S1"' in dot
        assert "doublecircle" in dot  # final state
        assert "size += pushRate" in dot

    def test_statespace_dot(self):
        from repro.ccsl import AlternatesRuntime
        from repro.engine import ExecutionModel, explore
        from repro.moccml.draw import statespace_to_dot
        space = explore(ExecutionModel(["a", "b"],
                                       [AlternatesRuntime("a", "b")]))
        dot = statespace_to_dot(space)
        assert "digraph" in dot
        assert "0 -> 1" in dot
