"""Tests for the operational semantics of constraint automata.

These reproduce the worked example of paper §II-C on the Fig. 3
PlaceConstraint automaton: the boolean expression is ``write ∧ ¬read``
when only writing is possible, and ``(write ∧ ¬read) ∨ (read ∧ ¬write)``
when both are.
"""

import pytest

from repro.boolalg import iter_models
from repro.errors import MoccmlError, SemanticsError
from repro.moccml import LibraryRegistry, RelationLibrary
from repro.moccml.semantics import AutomatonRuntime
from tests.moccml.test_ast import place_definition


def make_runtime(push=1, pop=1, delay=0, capacity=2, definition=None):
    definition = definition or place_definition()
    return AutomatonRuntime(definition, {
        "write": "w", "read": "r",
        "pushRate": push, "popRate": pop,
        "itsDelay": delay, "itsCapacity": capacity,
    }, label="place")


def accepted_steps(runtime):
    """Non-empty sets of events accepted by the runtime's formula."""
    formula = runtime.step_formula()
    steps = set()
    for model in iter_models(formula, over=("w", "r")):
        step = frozenset(name for name, value in model.items() if value)
        if step:
            steps.add(step)
    return steps


class TestFig3Semantics:
    def test_empty_place_allows_only_write(self):
        runtime = make_runtime()
        # paper: "the boolean expression when size is lesser than
        # itsCapacity minus pushRate is: write ∧ ¬read"
        assert accepted_steps(runtime) == {frozenset({"w"})}

    def test_partially_filled_allows_both_exclusively(self):
        runtime = make_runtime(delay=1)
        # paper: "(write ∧ ¬read) ∨ (read ∧ ¬write)"
        assert accepted_steps(runtime) == {frozenset({"w"}),
                                           frozenset({"r"})}

    def test_full_place_allows_only_read(self):
        runtime = make_runtime(delay=2, capacity=2)
        assert accepted_steps(runtime) == {frozenset({"r"})}

    def test_stutter_always_accepted(self):
        runtime = make_runtime()
        formula = runtime.step_formula()
        assert formula.evaluate({"w": False, "r": False})

    def test_initial_action_sets_size_to_delay(self):
        runtime = make_runtime(delay=3, capacity=5)
        assert runtime.variables == {"size": 3}

    def test_advance_updates_size(self):
        runtime = make_runtime(capacity=3)
        runtime.advance(frozenset({"w"}))
        assert runtime.variables == {"size": 1}
        runtime.advance(frozenset({"w"}))
        assert runtime.variables == {"size": 2}
        runtime.advance(frozenset({"r"}))
        assert runtime.variables == {"size": 1}

    def test_advance_rejects_unacceptable_step(self):
        runtime = make_runtime()  # empty place
        with pytest.raises(SemanticsError):
            runtime.advance(frozenset({"r"}))

    def test_simultaneous_read_write_rejected_by_base_variant(self):
        runtime = make_runtime(delay=1)
        with pytest.raises(SemanticsError):
            runtime.advance(frozenset({"w", "r"}))

    def test_rates(self):
        runtime = make_runtime(push=2, pop=3, capacity=6)
        runtime.advance(frozenset({"w"}))
        runtime.advance(frozenset({"w"}))
        assert runtime.variables == {"size": 4}
        # only 4 tokens: can read (pop 3) once
        runtime.advance(frozenset({"r"}))
        assert runtime.variables == {"size": 1}
        with pytest.raises(SemanticsError):
            runtime.advance(frozenset({"r"}))

    def test_capacity_blocks_write(self):
        runtime = make_runtime(push=2, capacity=3)
        runtime.advance(frozenset({"w"}))
        # size=2, capacity-push=1 -> write forbidden
        assert accepted_steps(runtime) == {frozenset({"r"})}


class TestStutterConfiguration:
    def test_literal_paper_reading_deadlocks_on_empty_step(self):
        definition = place_definition()
        definition.allow_stutter = False
        runtime = AutomatonRuntime(definition, {
            "write": "w", "read": "r", "pushRate": 1, "popRate": 1,
            "itsDelay": 0, "itsCapacity": 2}, label="strict-place")
        formula = runtime.step_formula()
        # without the stutter disjunct the empty step is rejected
        assert not formula.evaluate({"w": False, "r": False})
        with pytest.raises(SemanticsError):
            runtime.advance(frozenset())


class TestRuntimePlumbing:
    def test_missing_binding_rejected(self):
        with pytest.raises(MoccmlError):
            AutomatonRuntime(place_definition(), {"write": "w"})

    def test_event_binding_type_checked(self):
        with pytest.raises(MoccmlError):
            AutomatonRuntime(place_definition(), {
                "write": 3, "read": "r", "pushRate": 1, "popRate": 1,
                "itsDelay": 0, "itsCapacity": 1})

    def test_int_binding_type_checked(self):
        with pytest.raises(MoccmlError):
            AutomatonRuntime(place_definition(), {
                "write": "w", "read": "r", "pushRate": "fast", "popRate": 1,
                "itsDelay": 0, "itsCapacity": 1})

    def test_extra_binding_rejected(self):
        with pytest.raises(MoccmlError):
            AutomatonRuntime(place_definition(), {
                "write": "w", "read": "r", "pushRate": 1, "popRate": 1,
                "itsDelay": 0, "itsCapacity": 1, "bogus": 9})

    def test_state_key_reflects_variables(self):
        runtime = make_runtime(capacity=3)
        key_before = runtime.state_key()
        runtime.advance(frozenset({"w"}))
        assert runtime.state_key() != key_before

    def test_clone_is_independent(self):
        runtime = make_runtime(capacity=3)
        copy = runtime.clone()
        runtime.advance(frozenset({"w"}))
        assert copy.variables == {"size": 0}
        assert runtime.variables == {"size": 1}
        assert copy.state_key() != runtime.state_key()

    def test_is_accepting_default(self):
        runtime = make_runtime()
        assert runtime.is_accepting()


class TestRegistryInstantiation:
    def test_instantiate_automaton_from_registry(self):
        registry = LibraryRegistry()
        library = RelationLibrary("SimpleSDFRelationLibrary")
        library.define(place_definition())
        registry.register(library)
        runtime = registry.instantiate(
            "SimpleSDFRelationLibrary.PlaceConstraint",
            ["w", "r", 1, 1, 0, 2], label="p0")
        assert runtime.label == "p0"
        assert runtime.constrained_events == frozenset({"w", "r"})
        assert accepted_steps(runtime) == {frozenset({"w"})}

    def test_instantiate_checks_argument_kinds(self):
        registry = LibraryRegistry()
        library = RelationLibrary("L")
        library.define(place_definition())
        registry.register(library)
        with pytest.raises(MoccmlError):
            registry.instantiate("PlaceConstraint", ["w", "r", "x", 1, 0, 2])
        with pytest.raises(MoccmlError):
            registry.instantiate("PlaceConstraint", ["w", 5, 1, 1, 0, 2])
        with pytest.raises(MoccmlError):
            registry.instantiate("PlaceConstraint", ["w", "r"])
