"""Tests for MoCCML library JSON persistence and constraint products."""

import pytest

from repro.ccsl import AlternatesRuntime, PrecedesRuntime, excludes, subclock
from repro.errors import SerializationError
from repro.moccml.product import product_report
from repro.moccml.semantics import AutomatonRuntime
from repro.moccml.serialize import library_from_json, library_to_json
from repro.moccml.text import parse_library
from repro.moccml.validate import validate_library
from repro.sdf.mocc import sdf_library
from tests.moccml.test_text import DECLARATIVE_TEXT, FIG3_TEXT


class TestLibraryJson:
    def test_automaton_roundtrip(self):
        library = parse_library(FIG3_TEXT)
        text = library_to_json(library)
        back = library_from_json(text)
        assert back.name == library.name
        assert validate_library(back) == []
        definition = back.definition_for("PlaceConstraint")
        assert definition.initial_state == "S1"
        assert len(definition.transitions) == 2
        # behaviour preserved
        runtime = AutomatonRuntime(definition, {
            "write": "w", "read": "r", "pushRate": 1, "popRate": 1,
            "itsDelay": 2, "itsCapacity": 4})
        assert runtime.variables == {"size": 2}
        runtime.advance(frozenset({"r"}))
        assert runtime.variables == {"size": 1}

    def test_declarative_roundtrip(self):
        library = parse_library(DECLARATIVE_TEXT)
        back = library_from_json(library_to_json(library))
        definition = back.definition_for("Handshake")
        assert [i.declaration_name for i in definition.instantiations] == [
            "Alternates", "SubClock"]
        assert definition.instantiations[0].arguments == ("req", "ack")

    def test_sdf_library_roundtrip(self):
        for variant in ("default", "strict", "multiport"):
            library = sdf_library(variant)
            back = library_from_json(library_to_json(library))
            assert validate_library(back) == []
            original = library.definition_for("PlaceConstraint")
            copy = back.definition_for("PlaceConstraint")
            assert len(copy.transitions) == len(original.transitions)

    def test_builtins_rejected(self):
        from repro.ccsl.library import kernel_library
        with pytest.raises(SerializationError):
            library_to_json(kernel_library())

    def test_bad_documents_rejected(self):
        with pytest.raises(SerializationError):
            library_from_json("{not json")
        with pytest.raises(SerializationError):
            library_from_json('{"kind": "something-else", "format": 1}')
        with pytest.raises(SerializationError):
            library_from_json(
                '{"kind": "moccml-library", "format": 99, "name": "L", '
                '"declarations": [], "definitions": []}')


class TestProductReport:
    def test_compatible_pair(self):
        report = product_report([AlternatesRuntime("a", "b"),
                                 subclock("b", "a")])
        # b sub-event of a forces them simultaneous, but alternation
        # forbids simultaneity -> only 'a' alone can ever occur... and
        # then 'b' must never occur, blocking the second 'a'.
        assert report.n_states >= 1

    def test_contradiction_detected(self):
        report = product_report([PrecedesRuntime("a", "b"),
                                 PrecedesRuntime("b", "a")])
        assert report.immediately_deadlocked
        assert not report.compatible
        assert report.dead_events == ["a", "b"]

    def test_healthy_combination(self):
        report = product_report([AlternatesRuntime("a", "b"),
                                 excludes("a", "c")], extra_events=["c"])
        assert report.compatible
        assert not report.dead_events
        assert report.deadlock_states == 0

    def test_constraints_not_mutated(self):
        relation = AlternatesRuntime("a", "b")
        product_report([relation])
        assert relation.advance_count == 0

    def test_bounded(self):
        report = product_report([PrecedesRuntime("a", "b")], max_states=7)
        assert report.truncated
