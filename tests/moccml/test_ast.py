"""Tests for the MoCCML abstract syntax and static validation."""

import pytest

from repro.errors import MoccmlError, MoccmlValidationError
from repro.iexpr import Assign, IntConst, IntVar, parse_guard
from repro.moccml import (
    ConstraintAutomataDefinition,
    ConstraintDeclaration,
    ConstraintInstantiation,
    DeclarativeDefinition,
    LibraryRegistry,
    Parameter,
    RelationLibrary,
    Transition,
    Trigger,
    VariableDecl,
    validate_definition,
    validate_library,
)
from repro.moccml.validate import assert_valid_definition, find_nondeterminism


def place_declaration():
    return ConstraintDeclaration("PlaceConstraint", [
        Parameter("write", "event"), Parameter("read", "event"),
        Parameter("pushRate", "int"), Parameter("popRate", "int"),
        Parameter("itsDelay", "int"), Parameter("itsCapacity", "int")])


def place_definition(declaration=None):
    declaration = declaration or place_declaration()
    return ConstraintAutomataDefinition(
        "PlaceConstraintDef", declaration,
        states=["S1"], initial_state="S1",
        variables=[VariableDecl("size", 0)],
        initial_actions=[Assign("size", "=", IntVar("itsDelay"))],
        transitions=[
            Transition("S1", "S1", Trigger(["write"], ["read"]),
                       parse_guard("size <= itsCapacity - pushRate"),
                       [Assign("size", "+=", IntVar("pushRate"))]),
            Transition("S1", "S1", Trigger(["read"], ["write"]),
                       parse_guard("size >= popRate"),
                       [Assign("size", "-=", IntVar("popRate"))]),
        ])


class TestDeclaration:
    def test_parameter_kinds(self):
        declaration = place_declaration()
        assert [p.name for p in declaration.event_parameters()] == [
            "write", "read"]
        assert len(declaration.int_parameters()) == 4

    def test_unknown_kind_rejected(self):
        with pytest.raises(MoccmlError):
            Parameter("x", "float")

    def test_duplicate_parameter_rejected(self):
        with pytest.raises(MoccmlError):
            ConstraintDeclaration("C", [Parameter("a", "event"),
                                        Parameter("a", "int")])

    def test_arity_check(self):
        declaration = place_declaration()
        declaration.check_arity(6)
        with pytest.raises(MoccmlError):
            declaration.check_arity(2)


class TestTrigger:
    def test_overlap_rejected(self):
        with pytest.raises(MoccmlError):
            Trigger(["a"], ["a"])

    def test_events_union(self):
        trigger = Trigger(["a", "b"], ["c"])
        assert trigger.events() == frozenset({"a", "b", "c"})

    def test_deduplication(self):
        trigger = Trigger(["a", "a"], [])
        assert trigger.true_triggers == ("a",)


class TestAutomatonValidation:
    def test_fig3_is_valid(self):
        assert validate_definition(place_definition()) == []
        assert_valid_definition(place_definition())

    def test_unknown_initial_state(self):
        definition = place_definition()
        definition.initial_state = "S9"
        assert any("initial state" in issue
                   for issue in validate_definition(definition))

    def test_unknown_trigger_event(self):
        declaration = place_declaration()
        definition = place_definition(declaration)
        definition.transitions.append(
            Transition("S1", "S1", Trigger(["ghost"], [])))
        assert any("unknown event 'ghost'" in issue
                   for issue in validate_definition(definition))

    def test_unknown_guard_name(self):
        definition = place_definition()
        definition.transitions.append(
            Transition("S1", "S1", Trigger(["write"], []),
                       parse_guard("mystery > 0")))
        assert any("guard uses unknown name" in issue
                   for issue in validate_definition(definition))

    def test_action_must_target_local_variable(self):
        definition = place_definition()
        definition.transitions.append(
            Transition("S1", "S1", Trigger(["write"], []),
                       None, [Assign("pushRate", "+=", IntConst(1))]))
        issues = validate_definition(definition)
        assert any("parameters are read-only" in issue for issue in issues)

    def test_variable_shadowing_parameter(self):
        definition = place_definition()
        definition.variables.append(VariableDecl("pushRate", 0))
        assert any("shadows" in issue
                   for issue in validate_definition(definition))

    def test_unknown_transition_states(self):
        definition = place_definition()
        definition.transitions.append(Transition("S7", "S8"))
        issues = validate_definition(definition)
        assert any("unknown source state" in issue for issue in issues)
        assert any("unknown target state" in issue for issue in issues)

    def test_assert_raises_with_issues(self):
        definition = place_definition()
        definition.initial_state = "S9"
        with pytest.raises(MoccmlValidationError):
            assert_valid_definition(definition)

    def test_effective_final_states_default_all(self):
        definition = place_definition()
        assert definition.effective_final_states() == frozenset({"S1"})


class TestNondeterminism:
    def test_fig3_is_deterministic(self):
        assert find_nondeterminism(place_definition()) == []

    def test_overlapping_transitions_reported(self):
        declaration = ConstraintDeclaration("C", [
            Parameter("a", "event"), Parameter("b", "event")])
        definition = ConstraintAutomataDefinition(
            "CDef", declaration, states=["S"], initial_state="S",
            transitions=[
                Transition("S", "S", Trigger(["a"], [])),
                Transition("S", "S", Trigger(["b"], [])),
            ])
        reports = find_nondeterminism(definition)
        assert len(reports) == 1


class TestLibrary:
    def test_define_and_lookup(self):
        library = RelationLibrary("SimpleSDFRelationLibrary")
        definition = place_definition()
        library.define(definition)
        assert "PlaceConstraint" in library
        assert library.definition_for("PlaceConstraint") is definition
        assert validate_library(library) == []

    def test_declaration_without_definition_reported(self):
        library = RelationLibrary("L")
        library.declare(place_declaration())
        issues = validate_library(library)
        assert any("no definition" in issue for issue in issues)

    def test_duplicate_definition_rejected(self):
        library = RelationLibrary("L")
        library.define(place_definition())
        with pytest.raises(MoccmlError):
            library.define(place_definition(
                library.declaration("PlaceConstraint")))

    def test_registry_qualified_resolution(self):
        registry = LibraryRegistry()
        library = RelationLibrary("L")
        library.define(place_definition())
        registry.register(library)
        _lib, declaration = registry.resolve("L.PlaceConstraint")
        assert declaration.name == "PlaceConstraint"
        _lib, declaration = registry.resolve("PlaceConstraint")
        assert declaration.name == "PlaceConstraint"

    def test_registry_ambiguity(self):
        registry = LibraryRegistry()
        for name in ("A", "B"):
            library = RelationLibrary(name)
            library.declare(place_declaration())
            registry.register(library)
        with pytest.raises(MoccmlError):
            registry.resolve("PlaceConstraint")
        _lib, declaration = registry.resolve("A.PlaceConstraint")
        assert declaration.name == "PlaceConstraint"

    def test_unknown_names(self):
        registry = LibraryRegistry()
        with pytest.raises(MoccmlError):
            registry.resolve("Nope")
        with pytest.raises(MoccmlError):
            registry.library("Nope")


class TestDeclarativeDefinition:
    def test_requires_instances(self):
        declaration = ConstraintDeclaration("Empty", [])
        with pytest.raises(MoccmlError):
            DeclarativeDefinition("EmptyDef", declaration, [])

    def test_validation_checks_arguments(self):
        declaration = ConstraintDeclaration("Wrap", [
            Parameter("a", "event"), Parameter("b", "event")])
        definition = DeclarativeDefinition(
            "WrapDef", declaration,
            [ConstraintInstantiation("Alternates", ["a", "ghost"])])
        issues = validate_definition(definition)
        assert any("'ghost'" in issue for issue in issues)
