"""Semantic corner cases: empty-step transitions, trigger-free
transitions, final states, and include_empty exploration."""


from repro.engine import ExecutionModel, explore
from repro.moccml import LibraryRegistry
from repro.moccml.semantics import AutomatonRuntime
from repro.moccml.text import parse_library

WATCHDOG = """
// fires 'alarm' only while 'kick' stays away: an unless-only trigger
// can fire on a completely silent step.
library WatchdogLibrary {
  declaration Watchdog(kick: event, alarm: event)
  automaton WatchdogDef implements Watchdog nostutter {
    var misses: int = 0
    initial final state Armed
    state Tripped
    transition Armed -> Armed when {kick} [misses >= 0] / misses = 0
    transition Armed -> Tripped unless {kick, alarm} [misses >= 0] / misses += 1
    transition Tripped -> Armed when {alarm} unless {kick}
  }
}
"""


def watchdog_runtime():
    library = parse_library(WATCHDOG)
    definition = library.definition_for("Watchdog")
    return AutomatonRuntime(definition, {"kick": "kick", "alarm": "alarm"},
                            label="dog")


class TestUnlessOnlyTransitions:
    def test_empty_step_fires_transition(self):
        runtime = watchdog_runtime()
        # an empty step (no kick, no alarm) IS acceptable and moves state
        formula = runtime.step_formula()
        assert formula.evaluate({"kick": False, "alarm": False})
        runtime.advance(frozenset())
        assert runtime.current_state == "Tripped"
        assert runtime.variables == {"misses": 1}

    def test_kick_keeps_armed(self):
        runtime = watchdog_runtime()
        runtime.advance(frozenset({"kick"}))
        assert runtime.current_state == "Armed"

    def test_is_accepting_tracks_final_states(self):
        runtime = watchdog_runtime()
        assert runtime.is_accepting()
        runtime.advance(frozenset())
        assert not runtime.is_accepting()  # Tripped is not final
        runtime.advance(frozenset({"alarm"}))
        assert runtime.is_accepting()

    def test_include_empty_exploration_reaches_tripped(self):
        runtime = watchdog_runtime()
        model = ExecutionModel(["kick", "alarm"], [runtime])
        without_empty = explore(model, include_empty=False)
        with_empty = explore(model, include_empty=True)
        # the Tripped state is reachable only through the empty step
        assert with_empty.n_states > without_empty.n_states
        accepting = [data["accepting"]
                     for _n, data in with_empty.graph.nodes(data=True)]
        assert not all(accepting)


class TestTriggerFreeTransition:
    TEXT = """
    library FreeLibrary {
      declaration Free(a: event)
      automaton FreeDef implements Free nostutter {
        initial final state S
        transition S -> S
      }
    }
    """

    def test_accepts_everything(self):
        library = parse_library(self.TEXT)
        runtime = AutomatonRuntime(library.definition_for("Free"),
                                   {"a": "a"})
        from repro.boolalg.expr import TRUE
        assert runtime.step_formula() is TRUE
        runtime.advance(frozenset())
        runtime.advance(frozenset({"a"}))
        assert runtime.current_state == "S"


class TestKernelLibrarySmoke:
    """Every kernel declaration instantiates and produces a formula."""

    def test_instantiate_all(self):
        from repro.ccsl.library import kernel_library
        registry = LibraryRegistry([kernel_library()])
        library = registry.library("CCSLKernel")
        sample_args = {
            "event": lambda i: f"e{i}",
            "int": lambda i: 1,
        }
        for declaration in library.declarations():
            arguments = [sample_args[p.kind](index)
                         for index, p in enumerate(declaration.parameters)]
            if declaration.name == "FilterBy":
                arguments = ["e0", "e1", 0, 0, 1, 1]  # valid word encoding
            elif declaration.name == "PeriodicOn":
                arguments = ["e0", "e1", 2, 0]  # offset < period
            runtime = registry.instantiate(declaration.name, arguments)
            formula = runtime.step_formula()
            assert formula is not None
            assert runtime.clone().state_key() == runtime.state_key()
