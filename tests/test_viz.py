"""Tests for the rendering helpers."""

from repro.engine import AsapPolicy, Simulator, explore
from repro.sdf import SdfBuilder, build_execution_model
from repro.viz import sdf_to_dot, statespace_report, trace_report


def pipeline():
    builder = SdfBuilder("pipe")
    builder.agent("a", cycles=2)
    builder.agent("b")
    builder.connect("a", "b", push=2, pop=1, capacity=3, delay=1)
    return builder.build()


class TestSdfDot:
    def test_contains_agents_and_edges(self):
        _model, app = pipeline()
        dot = sdf_to_dot(app)
        assert '"a" [label="a\\nN=2"];' in dot
        assert '"b" [label="b"];' in dot
        assert '"a" -> "b"' in dot
        assert "2/1 cap=3 d=1" in dot

    def test_valid_digraph_shape(self):
        _model, app = pipeline()
        dot = sdf_to_dot(app)
        assert dot.startswith('digraph "pipe"')
        assert dot.rstrip().endswith("}")


class TestReports:
    def test_trace_report(self):
        model, _app = pipeline()
        result = Simulator(build_execution_model(model).execution_model,
                           AsapPolicy()).run(8)
        report = trace_report(result.trace)
        assert "steps: 8" in report
        assert "occurrences:" in report
        assert "a.start" in report

    def test_trace_report_without_diagram(self):
        model, _app = pipeline()
        result = Simulator(build_execution_model(model).execution_model,
                           AsapPolicy()).run(4)
        report = trace_report(result.trace, show_diagram=False)
        assert "X" not in report.splitlines()[-1] or "occurrences" in report

    def test_statespace_report(self):
        model, _app = pipeline()
        space = explore(build_execution_model(model).execution_model)
        report = statespace_report(space)
        assert "states:" in report
        assert "parallelism histogram" in report
