"""The policy registry: names, specs, custom registration."""

import pytest

from repro.engine import (
    AsapPolicy,
    MinimalPolicy,
    PriorityPolicy,
    RandomPolicy,
    ReplayPolicy,
)
from repro.workbench import (
    PolicyError,
    make_policy,
    policy_names,
    register_policy,
)
from repro.workbench.policies import policy_doc


class TestRegistry:
    def test_builtin_names(self):
        names = policy_names()
        for expected in ("asap", "minimal", "random", "priority",
                         "replay"):
            assert expected in names

    def test_make_by_name(self):
        assert isinstance(make_policy("asap"), AsapPolicy)
        assert isinstance(make_policy("minimal"), MinimalPolicy)

    def test_make_with_kwargs(self):
        policy = make_policy({"name": "random", "seed": 9})
        assert isinstance(policy, RandomPolicy)
        priority = make_policy({"name": "priority",
                                "weights": {"a": 2, "b": 1}})
        assert isinstance(priority, PriorityPolicy)
        assert priority.weights == {"a": 2, "b": 1}

    def test_replay_from_plain_lists(self):
        policy = make_policy({"name": "replay",
                              "steps": [["a"], ["b"], []]})
        assert isinstance(policy, ReplayPolicy)
        assert policy.steps == [frozenset({"a"}), frozenset({"b"}),
                                frozenset()]

    def test_instances_pass_through(self):
        policy = AsapPolicy()
        assert make_policy(policy) is policy

    def test_fresh_per_call(self):
        one = make_policy({"name": "random", "seed": 0})
        two = make_policy({"name": "random", "seed": 0})
        assert one is not two

    def test_unknown_name(self):
        with pytest.raises(PolicyError, match="unknown policy"):
            make_policy("fifo")

    def test_bad_kwargs(self):
        with pytest.raises(PolicyError, match="bad arguments"):
            make_policy({"name": "asap", "bogus": 1})

    def test_mapping_needs_name(self):
        with pytest.raises(PolicyError, match="'name'"):
            make_policy({"seed": 1})

    def test_register_custom(self):
        from repro.workbench import policies as module

        @register_policy("unit-test-first")
        def first_policy():
            class FirstPolicy(AsapPolicy):
                name = "first"

                def choose(self, candidates, step_index):
                    self._require(candidates)
                    return min(candidates,
                               key=lambda step: sorted(step))
            return FirstPolicy()
        try:
            assert "unit-test-first" in policy_names()
            assert make_policy("unit-test-first").name == "first"
        finally:
            module._REGISTRY.pop("unit-test-first", None)


class TestPolicyDoc:
    def test_names_and_mappings_pass(self):
        assert policy_doc("asap") == "asap"
        assert policy_doc({"name": "random", "seed": 2}) == {
            "name": "random", "seed": 2}

    def test_instances_rejected(self):
        with pytest.raises(PolicyError, match="not.*serializable"):
            policy_doc(AsapPolicy())
