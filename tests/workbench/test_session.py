"""Workbench sessions: resolution, run_many determinism, streaming."""

import pytest

from repro.sdf import SdfBuilder
from repro.workbench import (
    CampaignSpec,
    ExploreSpec,
    FrontendError,
    SimulateSpec,
    Workbench,
)

APPLICATION = """
application demo {
  agent src
  agent dst
  place src -> dst push 1 pop 1 capacity 2
}
"""


def pipeline(name, length=3, capacity=2):
    builder = SdfBuilder(name)
    for index in range(length):
        builder.agent(f"{name}_a{index}")
    for index in range(length - 1):
        builder.connect(f"{name}_a{index}", f"{name}_a{index+1}",
                        capacity=capacity)
    return builder


@pytest.fixture()
def workbench():
    wb = Workbench()
    wb.add(APPLICATION, name="demo")
    wb.add(pipeline("chain"), name="chain")
    return wb


class TestSession:
    def test_handle_lookup(self, workbench):
        assert workbench.handle("demo").name == "demo"
        assert workbench.names() == ["chain", "demo"]

    def test_load_is_the_session_alias_of_add(self, workbench):
        handle = workbench.load(APPLICATION, name="demo2")
        assert workbench.handle("demo2") is handle

    def test_unknown_handle(self, workbench):
        with pytest.raises(FrontendError, match="no model named"):
            workbench.handle("ghost")

    def test_spec_model_resolves_source_token(self, tmp_path):
        path = tmp_path / "demo.sigpml"
        path.write_text(APPLICATION)
        wb = Workbench()
        result = wb.run(SimulateSpec(str(path), steps=4))
        assert result.ok
        assert result.data["steps_run"] == 4
        # the loaded handle is cached under the token for reuse
        assert wb.run(SimulateSpec(str(path), steps=4)).ok

    def test_run_accepts_doc_and_json(self, workbench):
        doc = {"kind": "simulate", "model": "demo", "steps": 3}
        assert workbench.run(doc).data["steps_run"] == 3
        spec_json = SimulateSpec("demo", steps=3).to_json()
        assert workbench.run(spec_json).data["steps_run"] == 3


class TestRunMany:
    def batch(self):
        return [
            SimulateSpec("demo", policy="asap", steps=12),
            SimulateSpec("demo", policy={"name": "random", "seed": 7},
                         steps=12),
            ExploreSpec("demo", max_states=500, include_graph=True),
            SimulateSpec("chain", policy="minimal", steps=10),
            CampaignSpec("chain", steps=8),
            ExploreSpec("chain", max_states=500),
        ]

    def test_results_in_input_order(self, workbench):
        results = workbench.run_many(self.batch(), workers=1)
        assert [r.kind for r in results] == [
            "simulate", "simulate", "explore", "simulate", "campaign",
            "explore"]
        assert [r.model for r in results] == [
            "demo", "demo", "demo", "chain", "chain", "chain"]

    @pytest.mark.parametrize("workers", [2, 4, 8])
    def test_byte_identical_across_workers(self, workbench, workers):
        baseline = [r.to_json()
                    for r in workbench.run_many(self.batch(), workers=1)]
        parallel = [r.to_json()
                    for r in workbench.run_many(self.batch(),
                                                workers=workers)]
        assert parallel == baseline

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_byte_identical_across_backends(self, workbench, backend,
                                            workers):
        # the farm contract: results do not depend on the backend or
        # the worker count — serial×1 is the baseline all must match.
        # (the 'chain' model is an SdfBuilder handle with no source
        # doc, so this also covers the process backend's in-parent
        # fallback path next to shipped groups)
        baseline = [r.to_json()
                    for r in workbench.run_many(self.batch(), workers=1,
                                                backend="serial")]
        swept = [r.to_json()
                 for r in workbench.run_many(self.batch(),
                                             workers=workers,
                                             backend=backend)]
        assert swept == baseline

    def test_unknown_backend_rejected(self, workbench):
        from repro.farm import BackendError
        with pytest.raises(BackendError, match="unknown backend"):
            workbench.run_many([SimulateSpec("demo", steps=2)],
                               backend="quantum")

    def test_streaming_callback_sees_every_result(self, workbench):
        seen = []
        results = workbench.run_many(
            self.batch(), workers=4,
            on_result=lambda index, result: seen.append((index,
                                                         result.kind)))
        assert sorted(index for index, _ in seen) == list(range(6))
        for index, kind in seen:
            assert results[index].kind == kind

    def test_batch_shares_one_kernel_per_model(self, workbench):
        handle = workbench.handle("demo")
        kernel = handle.execution_model.kernel
        workbench.run_many(self.batch(), workers=2)
        # the batch ran on clones of the registered handle: same kernel,
        # now warm
        assert workbench.handle("demo").execution_model.kernel is kernel
        sizes = kernel.cache_sizes()
        assert sizes["steps"] > 0

    def test_errors_are_contained(self, workbench):
        specs = [SimulateSpec("demo", steps=4),
                 SimulateSpec("demo", policy={"name": "nope"}, steps=4)]
        results = workbench.run_many(specs, workers=2)
        assert results[0].ok
        assert results[1].status == "error"

    def test_missing_model_raises_up_front(self, workbench):
        with pytest.raises(FrontendError):
            workbench.run_many([SimulateSpec("ghost", steps=2)])

    def test_policy_instance_yields_error_result_not_crash(self,
                                                           workbench):
        from repro.engine import AsapPolicy
        specs = [SimulateSpec("demo", policy=AsapPolicy(), steps=2),
                 SimulateSpec("demo", steps=2)]
        results = workbench.run_many(specs, workers=2)
        assert results[0].status == "error"
        assert "serializable" in results[0].error
        assert results[1].ok

    def test_aliased_models_group_by_handle_identity(self, tmp_path):
        # resolving a path token registers the handle under BOTH the
        # token and the application name, so specs can alias one handle
        # through two model strings; the batch must put them in ONE
        # group (the one-worker-per-kernel invariant is per handle)
        import json
        path = tmp_path / "demo.sigpml"
        path.write_text(APPLICATION)
        wb = Workbench()
        specs = [SimulateSpec(str(path), steps=6),
                 ExploreSpec("demo"),
                 SimulateSpec("demo", steps=6),
                 ExploreSpec(str(path))]
        seq = [r.to_json() for r in wb.run_many(specs, workers=1)]
        # both model strings resolve to the same handle object
        assert wb.handle(str(path)) is wb.handle("demo")
        par = [r.to_json() for r in wb.run_many(specs, workers=4)]
        assert par == seq
        # the aliases did identical work: payloads match pairwise
        payloads = [json.loads(text)["data"] for text in par]
        assert payloads[0] == payloads[2]
        assert payloads[1] == payloads[3]
