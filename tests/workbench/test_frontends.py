"""Front-end registry: every source kind dispatches to a handle."""

import pytest

from repro.engine import ExecutionModel
from repro.errors import ReproError
from repro.sdf import SdfBuilder
from repro.workbench import (
    CcslSpec,
    DeploymentSpec,
    FrontendError,
    ModelHandle,
    MoccmlSpec,
    PamConfiguration,
    frontend_names,
    load,
    register_frontend,
    source_from_doc,
)

APPLICATION = """
application demo {
  agent src
  agent dst
  place src -> dst push 1 pop 1 capacity 2
}
"""

DEPLOYMENT = """
platform board {
  processor cpu
}
allocation {
  src, dst -> cpu
}
"""

PROTOCOL_LIBRARY = """
library Proto {
  declaration Handshake(req: event, ack: event)
  declarative HandshakeDef implements Handshake {
    Alternates(req, ack)
  }
}
"""


class TestDispatch:
    def test_sigpml_text(self):
        handle = load(APPLICATION)
        assert handle.frontend == "sigpml"
        assert handle.name == "demo"
        assert "src.start" in handle.execution_model.events
        assert handle.application is not None

    def test_sigpml_path(self, tmp_path):
        path = tmp_path / "demo.sigpml"
        path.write_text(APPLICATION)
        handle = load(str(path))
        assert handle.frontend == "sigpml"
        assert handle.metadata["path"] == str(path)

    def test_sigpml_pathlib(self, tmp_path):
        path = tmp_path / "demo.sigpml"
        path.write_text(APPLICATION)
        assert load(path).frontend == "sigpml"

    def test_sigpml_variant_option(self):
        default = load(APPLICATION)
        multi = load(APPLICATION, place_variant="multiport")
        assert multi.metadata["place_variant"] == "multiport"
        # the variant changes the woven constraints, not the events
        assert multi.execution_model.events == default.execution_model.events

    def test_sdf_builder(self):
        builder = SdfBuilder("built")
        builder.agent("p")
        builder.agent("c")
        builder.connect("p", "c", capacity=2)
        handle = load(builder)
        assert handle.frontend == "sdf"
        assert handle.name == "built"

    def test_sdf_build_pair(self):
        builder = SdfBuilder("pair")
        builder.agent("p")
        builder.agent("c")
        builder.connect("p", "c", capacity=2)
        handle = load(builder.build())
        assert handle.frontend == "sdf"
        assert handle.name == "pair"

    def test_deployment_spec(self):
        handle = load(DeploymentSpec(application=APPLICATION,
                                     deployment=DEPLOYMENT))
        assert handle.frontend == "deployment"
        assert handle.deployment is not None
        assert handle.metadata["mutexes"] == 1
        assert handle.metadata["platform"] == "board"

    def test_deployment_from_paths(self, tmp_path):
        app = tmp_path / "demo.sigpml"
        app.write_text(APPLICATION)
        dep = tmp_path / "board.deploy"
        dep.write_text(DEPLOYMENT)
        handle = load(DeploymentSpec(application=str(app),
                                     deployment=str(dep)))
        assert handle.frontend == "deployment"
        assert handle.name == "demo@board"

    def test_pam_string(self):
        handle = load("pam:mono")
        assert handle.frontend == "pam"
        assert handle.metadata["configuration"] == "mono"
        assert handle.application is not None

    def test_pam_configuration(self):
        handle = load(PamConfiguration(configuration="infinite",
                                       capacity=2))
        assert handle.name == "pam-infinite"
        assert handle.metadata["capacity"] == 2

    def test_pam_unknown_configuration(self):
        with pytest.raises(FrontendError, match="unknown PAM"):
            load(PamConfiguration(configuration="octo"))

    def test_ccsl_spec(self):
        handle = load(CcslSpec("alt", events=["a", "b"],
                               constraints=[("Alternates", ["a", "b"])]))
        assert handle.frontend == "ccsl"
        assert handle.execution_model.events == ["a", "b"]
        # alternation: first step can only be {a}
        steps = handle.fresh().acceptable_steps()
        assert steps == [frozenset({"a"})]

    def test_ccsl_dict_constraints(self):
        handle = load(CcslSpec("alt", events=["a", "b"], constraints=[
            {"relation": "Precedes", "args": ["a", "b"],
             "label": "a-before-b"}]))
        labels = [c.label for c in handle.execution_model.constraints]
        assert labels == ["a-before-b"]

    def test_moccml_spec(self):
        handle = load(MoccmlSpec(
            "proto", events=["req", "ack"],
            constraints=[("Handshake", ["req", "ack"])],
            library_text=PROTOCOL_LIBRARY))
        assert handle.frontend == "moccml"
        assert handle.metadata["libraries"] == ["Proto"]
        steps = handle.fresh().acceptable_steps()
        assert steps == [frozenset({"req"})]

    def test_bare_execution_model(self):
        model = ExecutionModel(["x", "y"], name="bare")
        handle = load(model)
        assert handle.frontend == "execution-model"
        assert handle.execution_model is model

    def test_handle_passthrough(self):
        handle = load(APPLICATION)
        assert load(handle) is handle

    def test_handle_passthrough_applies_name(self):
        handle = load(APPLICATION)
        assert load(handle, name="alias") is handle
        assert handle.name == "alias"

    def test_unknown_source(self):
        with pytest.raises(FrontendError, match="no front-end recognizes"):
            load(3.14)

    def test_unknown_explicit_frontend(self):
        with pytest.raises(FrontendError, match="unknown front-end"):
            load(APPLICATION, frontend="verilog")

    def test_name_override(self):
        assert load(APPLICATION, name="renamed").name == "renamed"


class TestHandle:
    def test_fresh_clones_share_kernel(self):
        handle = load(APPLICATION)
        one, two = handle.fresh(), handle.fresh()
        assert one is not two
        assert one.kernel is two.kernel is handle.execution_model.kernel

    def test_describe_is_json_ready(self):
        import json
        doc = load(APPLICATION).describe()
        assert json.loads(json.dumps(doc)) == doc
        assert doc["frontend"] == "sigpml"
        assert doc["events"] == 8


class TestRegistry:
    def test_frontend_names_cover_all_builtins(self):
        names = frontend_names()
        for expected in ("sigpml", "sdf", "deployment", "pam", "ccsl",
                         "moccml", "execution-model"):
            assert expected in names

    def test_register_custom_frontend(self):
        @register_frontend("unit-test-pair",
                           matches=lambda s: isinstance(s, set))
        def _load_set(source, **options):
            model = ExecutionModel(sorted(source), name="from-set")
            return ModelHandle(name="from-set", frontend="unit-test-pair",
                               execution_model=model)
        try:
            handle = load({"e1", "e2"})
            assert handle.frontend == "unit-test-pair"
            assert handle.execution_model.events == ["e1", "e2"]
        finally:
            from repro.workbench import frontends
            frontends._FRONTENDS.pop("unit-test-pair", None)

    def test_frontend_error_is_repro_error(self):
        assert issubclass(FrontendError, ReproError)


class TestSourceFromDoc:
    def test_sigpml_text_doc(self):
        source = source_from_doc({"frontend": "sigpml",
                                  "text": APPLICATION})
        assert load(source).name == "demo"

    def test_pam_doc(self):
        source = source_from_doc({"frontend": "pam",
                                  "configuration": "dual"})
        assert source.configuration == "dual"

    def test_ccsl_doc(self):
        source = source_from_doc({
            "frontend": "ccsl", "events": ["a", "b"],
            "constraints": [["Alternates", ["a", "b"]]]})
        assert load(source).frontend == "ccsl"

    def test_missing_fields(self):
        with pytest.raises(FrontendError):
            source_from_doc({"frontend": "sigpml"})
        with pytest.raises(FrontendError):
            source_from_doc({"frontend": "deployment"})
        with pytest.raises(FrontendError):
            source_from_doc({"frontend": "nope", "text": "x"})
