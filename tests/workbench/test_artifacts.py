"""RunSpec/RunResult artifacts: JSON round-trips and payloads."""

import json

import pytest

from repro.errors import SerializationError
from repro.workbench import (
    AnalyzeSpec,
    CampaignSpec,
    CheckSpec,
    ExploreSpec,
    RunResult,
    RunSpec,
    SimulateSpec,
    Workbench,
)

APPLICATION = """
application demo {
  agent src
  agent dst
  place src -> dst push 1 pop 1 capacity 2
}
"""


@pytest.fixture()
def workbench():
    wb = Workbench()
    wb.add(APPLICATION, name="demo")
    return wb


class TestRunSpec:
    @pytest.mark.parametrize("spec", [
        SimulateSpec("m", policy="asap", steps=7),
        SimulateSpec("m", policy={"name": "random", "seed": 3}),
        ExploreSpec("m", max_states=99, max_depth=4, maximal_only=True),
        CampaignSpec("m", steps=12, watch=["a.start"],
                     policies=["asap", {"name": "random", "seed": 1}]),
        AnalyzeSpec("m", label="static"),
        CheckSpec("m", "AG !deadlock"),
        CheckSpec("m", "AF occurs(dst.start)", strategy="explicit",
                  max_states=77, max_depth=3, include_empty=True),
    ])
    def test_round_trip(self, spec):
        clone = RunSpec.from_json(spec.to_json())
        assert clone.to_json() == spec.to_json()
        assert clone.kind == spec.kind
        assert clone.model == spec.model

    def test_bad_kind_rejected(self):
        with pytest.raises(SerializationError, match="unknown run kind"):
            RunSpec(kind="fuzz", model="m")

    def test_from_doc_validates(self):
        with pytest.raises(SerializationError, match="'kind'"):
            RunSpec.from_doc({"model": "m"})
        with pytest.raises(SerializationError, match="'model'"):
            RunSpec.from_doc({"kind": "simulate"})
        with pytest.raises(SerializationError, match="unknown run-spec"):
            RunSpec.from_doc({"kind": "simulate", "model": "m",
                              "bogus": 1})

    def test_from_json_rejects_garbage(self):
        with pytest.raises(SerializationError, match="invalid"):
            RunSpec.from_json("{nope")

    def test_policy_instances_do_not_serialize(self):
        from repro.engine import AsapPolicy
        spec = SimulateSpec("m", policy=AsapPolicy())
        with pytest.raises(Exception):
            spec.to_json()

    def test_check_spec_needs_a_property(self):
        with pytest.raises(SerializationError, match="property"):
            RunSpec(kind="check", model="m").to_doc()

    def test_check_doc_defaults_to_auto_strategy(self):
        # hand-written batch docs without a strategy must behave like
        # CheckSpec/CLI (auto), while explore keeps its explicit default
        spec = RunSpec.from_doc(
            {"kind": "check", "model": "m", "property": "AG !deadlock"})
        assert spec.strategy == "auto"
        assert RunSpec.from_doc(
            {"kind": "explore", "model": "m"}).strategy == "explicit"

    def test_check_spec_doc_shape(self):
        doc = CheckSpec("m", "AG !deadlock").to_doc()
        assert doc["kind"] == "check"
        assert doc["property"] == "AG !deadlock"
        assert "strategy" not in doc  # auto is the check default
        clone = RunSpec.from_doc(doc)
        assert clone.prop == "AG !deadlock"
        assert clone.strategy == "auto"
        explicit = CheckSpec("m", "true", strategy="explicit").to_doc()
        assert explicit["strategy"] == "explicit"


class TestCheckResults:
    def test_check_payload_holds(self, workbench):
        result = workbench.check("demo", "AG !deadlock")
        assert result.ok
        assert result.data["verdict"] == "holds"
        assert result.data["truncated"] is False
        assert result.data["strategy"] in ("explicit", "symbolic")
        assert "propertie" not in result.data  # payload is the check doc

    def test_check_counterexample_trace_rebuilds(self, workbench):
        result = workbench.check("demo", "AG occurs(src.start)")
        assert result.ok
        assert result.data["verdict"] == "fails"
        assert result.data["witness_kind"] == "counterexample"
        trace = result.trace()
        assert len(trace) == len(result.data["trace"]) > 0

    def test_check_unknown_propagates_truncation(self, workbench):
        result = workbench.run(CheckSpec(
            "demo", "AG !deadlock", strategy="explicit", max_states=1))
        assert result.ok
        assert result.data["verdict"] == "unknown"
        assert result.data["truncated"] is True
        assert "truncated" in result.data["reason"]
        assert "UNKNOWN" in result.summary()

    def test_check_summary_line(self, workbench):
        result = workbench.check("demo", "EF occurs(dst.start)")
        line = result.summary()
        assert "HOLDS" in line and "state(s)" in line
        assert "witness" in line

    def test_bad_property_is_an_error_result(self, workbench):
        result = workbench.check("demo", "AG (((")
        assert not result.ok
        assert "property syntax" in result.error

    def test_check_result_json_round_trip(self, workbench):
        result = workbench.check("demo", "AG !deadlock")
        clone = RunResult.from_json(result.to_json())
        assert clone.to_json() == result.to_json()
        assert clone.data["verdict"] == "holds"

    def test_witness_suppressed_via_options(self, workbench):
        result = workbench.run(CheckSpec(
            "demo", "EF occurs(dst.start)", include_witness=False))
        assert result.ok
        assert "trace" not in result.data


class TestRunResultPayloads:
    def test_simulate_payload_and_trace(self, workbench):
        result = workbench.simulate("demo", steps=6)
        assert result.ok
        data = result.data
        assert data["steps_run"] == 6
        assert data["policy"] == "asap"
        assert data["counts"]["src.start"] > 0
        trace = result.trace()
        assert len(trace) == 6
        assert trace.counts() == data["counts"]

    def test_explore_payload(self, workbench):
        result = workbench.explore("demo", include_graph=True)
        assert result.data["summary"]["states"] == 3
        space = result.statespace()
        assert space.n_states == 3
        assert not space.truncated

    def test_explore_without_graph(self, workbench):
        result = workbench.explore("demo")
        assert "statespace" not in result.data
        with pytest.raises(SerializationError, match="no state-space"):
            result.statespace()

    def test_campaign_payload(self, workbench):
        result = workbench.campaign("demo", steps=10)
        rows = result.campaign_rows()
        names = {row.policy for row in rows}
        assert names == {"asap", "minimal", "random"}
        # default watch: every agent start
        assert result.data["watch"] == ["src.start", "dst.start"]

    def test_analyze_payload(self, workbench):
        result = workbench.analyze("demo")
        assert result.data["consistent"]
        assert result.data["repetition"] == {"src": 1, "dst": 1}
        assert result.data["deadlock_free"]

    def test_analyze_requires_application(self, workbench):
        from repro.engine import ExecutionModel
        workbench.add(ExecutionModel(["x"], name="bare"))
        result = workbench.analyze("bare")
        assert result.status == "error"
        assert "no DSL application" in result.error

    def test_round_trip_every_kind(self, workbench):
        results = [
            workbench.simulate("demo", steps=5),
            workbench.explore("demo", include_graph=True),
            workbench.campaign("demo", steps=5),
            workbench.analyze("demo"),
        ]
        for result in results:
            text = result.to_json()
            clone = RunResult.from_json(text)
            assert clone.to_json() == text
            # the doc is plain JSON end to end
            assert json.loads(text)["status"] == "ok"

    def test_error_results_round_trip(self, workbench):
        result = workbench.simulate("demo",
                                    policy={"name": "nope"}, steps=2)
        assert result.status == "error"
        clone = RunResult.from_json(result.to_json())
        assert clone.status == "error"
        assert clone.error == result.error
        assert not clone.ok

    def test_canonical_json_is_stable(self, workbench):
        one = workbench.simulate("demo", steps=6)
        two = workbench.simulate("demo", steps=6)
        assert one.to_json() == two.to_json()

    def test_from_doc_rejects_wrong_kind(self):
        with pytest.raises(SerializationError):
            RunResult.from_doc({"kind": "statespace", "format": 1})
        with pytest.raises(SerializationError):
            RunResult.from_doc({"kind": "simulate", "model": "m",
                                "format": 99})


class TestUniformReports:
    def test_run_result_report_dispatches(self, workbench):
        from repro.viz import run_result_report
        sim = run_result_report(workbench.simulate("demo", steps=4))
        assert "steps: 4" in sim
        exp = run_result_report(
            workbench.explore("demo", include_graph=True))
        assert "state space of" in exp
        camp = run_result_report(workbench.campaign("demo", steps=4))
        assert "asap" in camp
        ana = run_result_report(workbench.analyze("demo"))
        assert "repetition vector" in ana

    def test_report_of_error_result(self, workbench):
        from repro.viz import run_result_report
        result = workbench.simulate("demo", policy={"name": "nope"})
        assert "error" in run_result_report(result)


class TestExploreStrategySpec:
    def test_strategy_round_trips(self):
        spec = ExploreSpec("demo", strategy="symbolic", max_states=50)
        doc = spec.to_doc()
        assert doc["strategy"] == "symbolic"
        assert RunSpec.from_doc(doc).strategy == "symbolic"

    def test_default_strategy_omitted_from_doc(self):
        assert "strategy" not in ExploreSpec("demo").to_doc()
        assert RunSpec.from_doc(
            {"kind": "explore", "model": "demo"}).strategy == "explicit"

    def test_strategies_agree_through_the_workbench(self, workbench):
        explicit = workbench.explore("demo", include_graph=True)
        symbolic = workbench.explore("demo", strategy="symbolic",
                                     include_graph=True)
        assert explicit.data["summary"] == symbolic.data["summary"]
        assert explicit.data["statespace"] == symbolic.data["statespace"]
        assert symbolic.data["strategy"] == "symbolic"

    def test_result_doc_carries_version(self, workbench):
        import repro
        doc = workbench.explore("demo").to_doc()
        assert doc["version"] == repro.__version__
        # round-trip re-stamps with the current build
        assert RunResult.from_doc(doc).to_doc()["version"] == \
            repro.__version__
