"""Deprecated entry points: they warn, and they still delegate."""

import warnings

import pytest

from repro.engine import AsapPolicy, Simulator, simulate_model
from repro.engine.campaign import campaign, run_campaign
from repro.sdf import SdfBuilder, build_execution_model, weave_sdf


def two_agent_model():
    builder = SdfBuilder("shim")
    builder.agent("p")
    builder.agent("c")
    builder.connect("p", "c", capacity=2)
    return builder.build()


class TestBuildExecutionModelShim:
    def test_warns(self):
        model, _app = two_agent_model()
        with pytest.warns(DeprecationWarning, match="weave_sdf"):
            build_execution_model(model)

    def test_identical_behavior(self):
        model, _app = two_agent_model()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            old = build_execution_model(model, place_variant="multiport")
        new = weave_sdf(model, place_variant="multiport")
        assert old.execution_model.events == new.execution_model.events
        assert [c.label for c in old.execution_model.constraints] \
            == [c.label for c in new.execution_model.constraints]

    def test_new_name_does_not_warn(self):
        model, _app = two_agent_model()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            weave_sdf(model)


class TestSimulatorShim:
    def test_warns_on_construction(self):
        model, _app = two_agent_model()
        woven = weave_sdf(model)
        with pytest.warns(DeprecationWarning, match="simulate_model"):
            Simulator(woven.execution_model.clone(), AsapPolicy())

    def test_identical_behavior(self):
        model, _app = two_agent_model()
        woven = weave_sdf(model)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            old = Simulator(woven.execution_model.clone(),
                            AsapPolicy()).run(10)
        new = simulate_model(woven.execution_model.clone(), AsapPolicy(),
                             10)
        assert old.trace.steps == new.trace.steps
        assert old.deadlocked == new.deadlocked
        assert old.steps_run == new.steps_run

    def test_core_does_not_warn(self):
        model, _app = two_agent_model()
        woven = weave_sdf(model)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            simulate_model(woven.execution_model.clone(), AsapPolicy(), 5)


class TestRunCampaignShim:
    def test_warns(self):
        model, _app = two_agent_model()
        woven = weave_sdf(model)
        with pytest.warns(DeprecationWarning, match="CampaignSpec"):
            run_campaign(woven.execution_model, steps=5,
                         watch_events=["p.start"])

    def test_identical_behavior(self):
        model, _app = two_agent_model()
        woven = weave_sdf(model)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            old = run_campaign(woven.execution_model, steps=8,
                               watch_events=["p.start"])
        new = campaign(woven.execution_model, steps=8,
                       watch_events=["p.start"])
        assert [row.as_dict() for row in old] \
            == [row.as_dict() for row in new]


class TestWorkbenchUsesNoDeprecatedPaths:
    def test_facade_is_warning_free(self):
        from repro.workbench import Workbench
        builder = SdfBuilder("clean")
        builder.agent("p")
        builder.agent("c")
        builder.connect("p", "c", capacity=2)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            wb = Workbench()
            wb.add(builder, name="clean")
            wb.simulate("clean", steps=5)
            wb.explore("clean")
            wb.campaign("clean", steps=5)
            wb.analyze("clean")
