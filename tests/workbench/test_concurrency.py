"""Thread-safe workbench sharing and callback-cancellation semantics.

These are the session-layer guarantees the analysis server builds on:
a raising ``on_result`` must cancel the batch cleanly (not wedge the
backend), and one workbench must be shareable across threads with
byte-identical results.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.workbench import ExploreSpec, SimulateSpec, Workbench

APPLICATION = """
application shared_demo {
  agent src
  agent mid
  agent dst
  place src -> mid push 1 pop 1 capacity 2
  place mid -> dst push 1 pop 1 capacity 2
}
"""


@pytest.fixture()
def workbench():
    wb = Workbench()
    wb.add(APPLICATION, name="demo")
    return wb


def battery(count=6):
    return [SimulateSpec("demo", steps=4 + i) for i in range(count)]


class TestCallbackCancellation:
    """Satellite bugfix: ``run_many`` must not wedge when ``on_result``
    raises — it cancels cleanly and surfaces the exception."""

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_raising_callback_surfaces_and_cancels(self, workbench,
                                                   backend):
        seen = []

        def poisoned(index, result):
            seen.append(index)
            raise ValueError("downstream pipe burst")

        with pytest.raises(ValueError, match="pipe burst"):
            workbench.run_many(battery(), backend=backend, workers=4,
                               on_result=poisoned)
        # cancellation is cooperative: the first callback fired, the
        # batch stopped streaming after the failure
        assert len(seen) >= 1

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_workbench_survives_a_poisoned_batch(self, workbench,
                                                 backend):
        def poisoned(index, result):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            workbench.run_many(battery(), backend=backend,
                               on_result=poisoned)
        # not wedged: the same workbench runs the next batch fine
        results = workbench.run_many(battery(3), backend=backend)
        assert all(result.ok for result in results)

    def test_later_callbacks_suppressed_after_failure(self, workbench):
        calls = []

        def poisoned(index, result):
            calls.append(index)
            raise ValueError("first failure wins")

        with pytest.raises(ValueError):
            workbench.run_many(battery(), backend="serial",
                               on_result=poisoned)
        # the serial backend stops at the next spec boundary: exactly
        # one callback fired, the rest were never executed
        assert calls == [calls[0]]

    def test_prior_results_still_written_through(self, workbench,
                                                 tmp_path):
        failures = []

        def poison_second(index, result):
            if len(failures) == 0 and index == 1:
                failures.append(index)
                raise ValueError("stop here")

        with pytest.raises(ValueError):
            workbench.run_many(battery(3), backend="serial",
                               store=tmp_path / "store",
                               on_result=poison_second)
        # results computed before the failure were stored: re-running
        # the full battery finds them warm
        results = workbench.run_many(battery(3), backend="serial",
                                     store=tmp_path / "store")
        assert results[0].cached and results[1].cached

    def test_store_failure_also_cancels(self, workbench):
        # the callback contract holds for every backend, including one
        # raising on the very first result
        def immediate(index, result):
            raise KeyboardInterrupt  # even BaseException must not wedge

        with pytest.raises(BaseException):
            workbench.run_many(battery(2), backend="serial",
                               on_result=immediate)


class TestSharedWorkbench:
    def test_concurrent_run_many_is_byte_identical(self, workbench):
        specs = [SimulateSpec("demo", steps=10),
                 ExploreSpec("demo", max_states=500)]
        reference = [result.to_json()
                     for result in workbench.run_many(specs)]

        def run():
            return [result.to_json()
                    for result in workbench.run_many(specs)]

        with ThreadPoolExecutor(max_workers=8) as pool:
            payloads = [future.result(timeout=60)
                        for future in [pool.submit(run)
                                       for _ in range(8)]]
        assert all(payload == reference for payload in payloads)

    def test_attach_aliases_without_renaming(self, workbench):
        handle = workbench.handle("demo")
        alias = workbench.attach("alias", handle)
        assert alias is handle
        assert handle.name == "demo"  # attach never mutates the handle
        assert workbench.handle("alias") is handle
        # results carry the request-local spec.model, so aliasing
        # cannot change artifact bytes
        result = workbench.run(SimulateSpec("alias", steps=3))
        assert result.model == "alias"

    def test_aliased_specs_share_one_group(self, workbench):
        handle = workbench.handle("demo")
        workbench.attach("alias", handle)
        specs = [SimulateSpec("demo", steps=5),
                 SimulateSpec("alias", steps=5)]
        results = workbench.run_many(specs, backend="thread", workers=4)
        assert results[0].model == "demo"
        assert results[1].model == "alias"
        assert results[0].data == results[1].data

    def test_concurrent_source_token_resolution_shares_handle(
            self, tmp_path):
        path = tmp_path / "demo.sigpml"
        path.write_text(APPLICATION)
        wb = Workbench()
        spec = SimulateSpec(str(path), steps=3)

        def run():
            return wb.run(spec)

        with ThreadPoolExecutor(max_workers=6) as pool:
            results = [future.result(timeout=60)
                       for future in [pool.submit(run)
                                      for _ in range(6)]]
        assert all(result.ok for result in results)
        # the token is registered (first registration wins) and every
        # later run resolves to that one handle, racing threads or not
        assert str(path) in wb.names()
        token_handle = wb.handle(str(path))
        assert wb._resolve(spec) is token_handle
